"""Tests for the dynamic semantics and the enforcement chase."""

import pytest

from repro.core.md import MatchingDependency
from repro.core.semantics import (
    InstancePair,
    enforce,
    is_stable,
    lhs_matches,
    prefer_informative,
    satisfies,
    satisfies_all,
)
from repro.core.schema import RelationSchema, SchemaPair
from repro.relations.relation import Relation


@pytest.fixture
def abc_pair():
    schema = RelationSchema("R", ["A", "B", "C"])
    return SchemaPair(schema, schema)


def _instance(pair, rows):
    relation = Relation(pair.left, rows)
    return InstancePair(pair, relation, relation)


@pytest.fixture
def example23(abc_pair):
    """I0 of Fig. 3: s1 = (a, b1, c1), s2 = (a, b2, c2)."""
    return _instance(
        abc_pair,
        [
            {"A": "a", "B": "b1", "C": "c1"},
            {"A": "a", "B": "b2", "C": "c2"},
        ],
    )


@pytest.fixture
def psi(abc_pair):
    """ψ1, ψ2 of Example 2.3 and ψ3 of Example 3.1."""
    psi1 = MatchingDependency(abc_pair, [("A", "A", "=")], [("B", "B")])
    psi2 = MatchingDependency(abc_pair, [("B", "B", "=")], [("C", "C")])
    psi3 = MatchingDependency(abc_pair, [("A", "A", "=")], [("C", "C")])
    return psi1, psi2, psi3


class TestLhsMatching:
    def test_equality_match(self, example23, psi):
        psi1, _, _ = psi
        assert lhs_matches(psi1, example23, 0, 1)

    def test_no_match(self, example23, psi):
        _, psi2, _ = psi
        assert not lhs_matches(psi2, example23, 0, 1)

    def test_fig1_phi1_matches_t1_t3(self, fig1, sigma):
        pair, credit, billing = fig1
        instance = InstancePair(pair, credit, billing)
        phi1 = sigma[0]
        assert lhs_matches(phi1, instance, 0, 0)  # t1 with t3
        assert not lhs_matches(phi1, instance, 0, 1)  # t1 with t4


class TestSatisfaction:
    """The (D0, D1, D2) progression of Fig. 3 / Example 2.3."""

    def test_d0_d1_satisfies_psi1_not_psi3(self, abc_pair, example23, psi):
        psi1, psi2, psi3 = psi
        d1 = _instance(
            abc_pair,
            [
                {"A": "a", "B": "b", "C": "c1"},
                {"A": "a", "B": "b", "C": "c2"},
            ],
        )
        assert satisfies(example23, d1, psi1)
        # ψ2's LHS is not matched in D0 (b1 ≠ b2), so it holds vacuously.
        assert satisfies(example23, d1, psi2)
        # Example 3.1: (D0, D1) ⊭ ψ3 — A matched in D0 but C differs in D1.
        assert not satisfies(example23, d1, psi3)
        assert not satisfies_all(example23, d1, [psi1, psi3])

    def test_d2_is_stable(self, abc_pair, psi):
        psi1, psi2, psi3 = psi
        d2 = _instance(
            abc_pair,
            [
                {"A": "a", "B": "b", "C": "c"},
                {"A": "a", "B": "b", "C": "c"},
            ],
        )
        assert is_stable(d2, [psi1, psi2])
        assert is_stable(d2, [psi3])

    def test_d0_not_stable(self, example23, psi):
        psi1, _, _ = psi
        assert not is_stable(example23, [psi1])

    def test_extension_required(self, abc_pair, example23, psi):
        psi1, _, _ = psi
        other = _instance(abc_pair, [{"A": "a", "B": "b", "C": "c"}])
        assert not satisfies(example23, other, psi1)  # tuple ids missing


class TestEnforce:
    def test_chase_reaches_stable_instance(self, example23, psi):
        psi1, psi2, _ = psi
        result = enforce(example23, [psi1, psi2])
        assert result.stable
        assert is_stable(result.instance, [psi1, psi2])
        # Original D must be untouched.
        assert example23.left[0]["B"] == "b1"

    def test_chase_identifies_b_and_c(self, example23, psi):
        psi1, psi2, psi3 = psi
        result = enforce(example23, [psi1, psi2])
        s1 = result.instance.left[0]
        s2 = result.instance.left[1]
        assert s1["B"] == s2["B"]
        assert s1["C"] == s2["C"]
        # The chase enforced ψ3's conclusion transitively — the semantic
        # counterpart of Σ0 ⊨m ψ3 (Example 3.3).
        assert satisfies(example23, result.instance, psi3)

    def test_merged_cells_report_identification(self, example23, psi):
        psi1, psi2, _ = psi
        result = enforce(example23, [psi1, psi2])
        assert result.identified(0, 1, [("B", "B"), ("C", "C")])
        assert not result.identified(0, 1, [("A", "A")]) or (
            example23.left[0]["A"] == example23.left[1]["A"]
        )

    def test_candidate_pair_restriction(self, example23, psi):
        psi1, _, _ = psi
        result = enforce(example23, [psi1], candidate_pairs=[])
        assert result.applications == 0

    def test_rounds_bounded(self, example23, psi):
        psi1, psi2, _ = psi
        result = enforce(example23, [psi1, psi2], max_rounds=1)
        assert result.rounds == 1

    def test_fig2_enforcement_of_phi2(self, fig1, sigma):
        """Fig. 2: enforcing ϕ2 equalizes t1[addr] and t4[post]."""
        pair, credit, billing = fig1
        instance = InstancePair(pair, credit, billing)
        phi2 = sigma[1]
        result = enforce(instance, [phi2])
        assert result.stable
        t1 = result.instance.left[0]
        t4 = result.instance.right[1]
        assert t1["addr"] == t4["post"]
        # The informative resolver picks the full address over "NJ".
        assert t1["addr"] == "10 Oak Street, MH, NJ 07974"

    def test_fig1_full_chase_matches_all_four(self, fig1, sigma, target):
        """Enforcing Σc matches t1 with each of t3–t6 (Example 1.1)."""
        pair, credit, billing = fig1
        instance = InstancePair(pair, credit, billing)
        result = enforce(instance, sigma)
        assert result.stable
        target_pairs = target.attribute_pairs()
        for billing_tid in range(4):
            assert result.identified(0, billing_tid, target_pairs), (
                f"t1 should match t{billing_tid + 3}"
            )
        # t2 (credit tid 1) matches nothing.
        for billing_tid in range(4):
            assert not result.identified(1, billing_tid, target_pairs)


class TestValueResolver:
    def test_prefer_informative_majority_among_equal_lengths(self):
        assert prefer_informative(["x", "x", "y"]) == "x"

    def test_prefer_informative_length(self):
        assert prefer_informative(["NJ", "10 Oak Street, NJ"]) == (
            "10 Oak Street, NJ"
        )

    def test_prefer_informative_nulls(self):
        assert prefer_informative([None, None]) is None
        assert prefer_informative([None, "x"]) == "x"

    def test_deterministic_tie_break(self):
        assert prefer_informative(["ab", "ba"]) == prefer_informative(
            ["ba", "ab"]
        )


class TestInstancePair:
    def test_schema_validation(self, abc_pair):
        wrong = Relation(RelationSchema("S", ["X"]))
        with pytest.raises(ValueError):
            InstancePair(abc_pair, wrong, wrong)

    def test_copy_shares_single_relation_for_self_match(self, example23):
        duplicate = example23.copy()
        assert duplicate.left is duplicate.right
        assert duplicate.extends(example23)

    def test_self_match_pairs_skip_reflexive(self, example23):
        pairs = list(example23.tuple_pairs())
        assert (0, 0) not in pairs
        assert (0, 1) in pairs
        assert (1, 0) not in pairs  # unordered, reported once

    def test_cross_relation_pairs(self, fig1):
        pair, credit, billing = fig1
        instance = InstancePair(pair, credit, billing)
        assert len(list(instance.tuple_pairs())) == 2 * 4

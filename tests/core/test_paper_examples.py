"""End-to-end checks of every worked example in the paper.

* Example 1.1 / Fig. 1 — the matching narrative on the credit/billing
  instances (deduced keys match t1 with t4–t6 while the given key only
  matches t1 with t3).
* Example 2.4 / 3.5 — rck1–rck4 are deducible from Σc = {ϕ1, ϕ2, ϕ3}.
* Example 4.1 — the MDClosure trace for rck4.
* Example 5.1 — findRCKs deduces {rck1, rck2, rck3, rck4} (plus the
  minimized seed key) with m = 6.
"""

import pytest

from repro.core.closure import ClosureEngine, deduces
from repro.core.findrcks import find_rcks, is_complete
from repro.core.rck import RelativeKey
from repro.core.similarity import EQUALITY
from repro.matching.comparison import spec_from_rck


@pytest.fixture
def rcks(target):
    """rck1..rck4 of Example 2.4."""
    return {
        "rck1": RelativeKey.from_triples(
            target,
            [("LN", "LN", "="), ("addr", "post", "="), ("FN", "FN", "dl(0.8)")],
        ),
        "rck2": RelativeKey.from_triples(
            target,
            [("LN", "LN", "="), ("tel", "phn", "="), ("FN", "FN", "dl(0.8)")],
        ),
        "rck3": RelativeKey.from_triples(
            target, [("email", "email", "="), ("addr", "post", "=")]
        ),
        "rck4": RelativeKey.from_triples(
            target, [("email", "email", "="), ("tel", "phn", "=")]
        ),
    }


class TestExample35Deduction:
    """Σc ⊨m rck1..rck4 (Examples 3.5 and 2.4)."""

    @pytest.mark.parametrize("name", ["rck1", "rck2", "rck3", "rck4"])
    def test_all_four_keys_deduced(self, pair, sigma, rcks, name):
        assert deduces(pair, sigma, rcks[name].to_md())

    def test_email_alone_is_not_a_key(self, pair, sigma, target):
        # Example 1.1: "we cannot match entire t[Yc] and t[Yb] by just
        # comparing their email or phone attributes".
        email_only = RelativeKey.from_triples(target, [("email", "email", "=")])
        assert not deduces(pair, sigma, email_only.to_md())

    def test_phone_alone_is_not_a_key(self, pair, sigma, target):
        phone_only = RelativeKey.from_triples(target, [("tel", "phn", "=")])
        assert not deduces(pair, sigma, phone_only.to_md())


class TestExample41ClosureTrace:
    """The M-array updates of Example 4.1."""

    def test_trace(self, pair, sigma, rcks):
        engine = ClosureEngine(pair, sigma)
        matrix, _ = engine.closure(rcks["rck4"].atoms)

        def eq(left, right):
            return matrix.get(pair.left_attr(left), pair.right_attr(right), EQUALITY)

        # Step 4 initialization: email and phone equalities.
        assert eq("email", "email")
        assert eq("tel", "phn")
        # ϕ2 fires: addr ⇌ post.
        assert eq("addr", "post")
        # ϕ3 fires: names identified.
        assert eq("FN", "FN")
        assert eq("LN", "LN")
        # ϕ1 fires: all of (Yc, Yb) identified.
        assert eq("gender", "gender")


class TestExample51FindRCKs:
    def test_key_set(self, sigma, target, rcks):
        found = find_rcks(sigma, target, m=6)
        found_sets = {key.triple_set() for key in found}
        for name in ("rck1", "rck2", "rck3", "rck4"):
            assert rcks[name].triple_set() in found_sets, f"{name} missing"

    def test_termination_with_all_keys_found(self, sigma, target):
        # m = 6 but only 5 RCKs exist: the loop must stop at completeness.
        found = find_rcks(sigma, target, m=6)
        assert len(found) == 5
        assert is_complete(found, sigma)

    def test_m_caps_result(self, sigma, target):
        found = find_rcks(sigma, target, m=2)
        assert len(found) == 2

    def test_every_returned_key_is_deduced(self, pair, sigma, target):
        engine = ClosureEngine(pair, sigma)
        for key in find_rcks(sigma, target, m=6):
            assert engine.deduces(key.to_md())

    def test_every_returned_key_is_minimal(self, pair, sigma, target):
        engine = ClosureEngine(pair, sigma)
        for key in find_rcks(sigma, target, m=6):
            for atom in key.atoms:
                if key.length == 1:
                    continue
                assert not engine.deduces(key.without(atom).to_md()), (
                    f"{key} is not minimal: {atom} is removable"
                )


class TestFigure1Matching:
    """The Example 1.1 narrative on the actual Fig. 1 tuples."""

    def test_given_key_matches_only_t3(self, fig1, rcks):
        pair, credit, billing = fig1
        rck1 = spec_from_rck(rcks["rck1"])
        t1 = credit[0]
        # t3 (tid 0 in billing) matches the given key …
        assert rck1.agrees_on_all(t1, billing[0])
        # … but t4, t5, t6 do not.
        assert not rck1.agrees_on_all(t1, billing[1])
        assert not rck1.agrees_on_all(t1, billing[2])
        assert not rck1.agrees_on_all(t1, billing[3])

    def test_deduced_keys_match_t4_t5_t6(self, fig1, rcks):
        pair, credit, billing = fig1
        t1 = credit[0]
        # Key (1) = rck2 matches t1–t4 (same LN, phone; similar FN).
        assert spec_from_rck(rcks["rck2"]).agrees_on_all(t1, billing[1])
        # Key (2) = rck3 matches t1–t5 (same address and email).
        assert spec_from_rck(rcks["rck3"]).agrees_on_all(t1, billing[2])
        # Key (3) = rck4 matches t1–t6 (same phone and email).
        assert spec_from_rck(rcks["rck4"]).agrees_on_all(t1, billing[3])

    def test_t2_matches_nothing(self, fig1, rcks):
        pair, credit, billing = fig1
        t2 = credit[1]
        for key in rcks.values():
            spec = spec_from_rck(key)
            for row in billing:
                assert not spec.agrees_on_all(t2, row)

    def test_mark_marx_similar(self, fig1):
        # The concrete similarity claim of Example 1.1.
        from repro.metrics.damerau_levenshtein import paper_dl_operator

        assert paper_dl_operator()("Mark", "Marx")

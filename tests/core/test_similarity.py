"""Unit tests for symbolic similarity operators."""

import pytest

from repro.core.similarity import (
    EQUALITY,
    SimilarityOperator,
    as_operator,
    operator_universe,
)


class TestSimilarityOperator:
    def test_equality_flag(self):
        assert EQUALITY.is_equality
        assert not SimilarityOperator("dl(0.8)").is_equality

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SimilarityOperator("")

    def test_value_identity(self):
        assert SimilarityOperator("dl(0.8)") == SimilarityOperator("dl(0.8)")
        assert SimilarityOperator("dl(0.8)") != SimilarityOperator("dl(0.9)")

    def test_ordering_is_by_name(self):
        ops = sorted([SimilarityOperator("b"), SimilarityOperator("a")])
        assert [op.name for op in ops] == ["a", "b"]

    def test_str(self):
        assert str(SimilarityOperator("jw(0.9)")) == "jw(0.9)"


class TestAsOperator:
    def test_from_string(self):
        assert as_operator("=") == EQUALITY

    def test_passthrough(self):
        op = SimilarityOperator("dl(0.8)")
        assert as_operator(op) is op

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_operator(42)


class TestOperatorUniverse:
    def test_always_contains_equality(self):
        assert EQUALITY in operator_universe([])

    def test_dedup(self):
        universe = operator_universe(
            [SimilarityOperator("dl(0.8)"), SimilarityOperator("dl(0.8)")]
        )
        assert len(universe) == 2  # = and dl(0.8)

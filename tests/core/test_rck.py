"""Unit tests for relative keys, the ≼ order, and apply(γ, φ)."""

import pytest

from repro.core.md import MatchingDependency
from repro.core.rck import RelativeKey, is_candidate


@pytest.fixture
def rck1(target):
    return RelativeKey.from_triples(
        target,
        [("LN", "LN", "="), ("addr", "post", "="), ("FN", "FN", "dl(0.8)")],
    )


@pytest.fixture
def rck4(target):
    return RelativeKey.from_triples(
        target, [("email", "email", "="), ("tel", "phn", "=")]
    )


class TestConstruction:
    def test_length_and_vector(self, rck1):
        assert rck1.length == 3
        assert [op.name for op in rck1.comparison_vector] == ["=", "=", "dl(0.8)"]

    def test_empty_rejected(self, target):
        with pytest.raises(ValueError):
            RelativeKey.from_triples(target, [])

    def test_duplicate_triples_rejected(self, target):
        with pytest.raises(ValueError, match="duplicate"):
            RelativeKey.from_triples(
                target, [("tel", "phn", "="), ("tel", "phn", "=")]
            )

    def test_identity_key_matches_target(self, target):
        key = RelativeKey.identity_key(target)
        assert key.length == len(target)
        assert all(op.is_equality for op in key.comparison_vector)

    def test_str_matches_paper_notation(self, rck4):
        assert str(rck4) == "([email, tel], [email, phn] || [=, =])"

    def test_lhs_attributes_outside_target_allowed(self, rck4):
        # email is not in (Yc, Yb) — Example 2.4 remarks on exactly this.
        assert ("email", "email") in rck4.attribute_pairs()


class TestToMd:
    def test_rhs_is_target(self, rck4, target):
        dependency = rck4.to_md()
        assert dependency.rhs_attribute_pairs() == target.attribute_pairs()

    def test_lhs_preserved(self, rck1):
        dependency = rck1.to_md()
        assert dependency.lhs == rck1.atoms


class TestCoverOrder:
    def test_subset_covers(self, target, rck1):
        shorter = RelativeKey.from_triples(
            target, [("LN", "LN", "="), ("addr", "post", "=")]
        )
        assert shorter.covers(rck1)
        assert shorter.strictly_smaller_than(rck1)
        assert not rck1.covers(shorter)

    def test_equal_keys_cover_but_not_strictly(self, rck4, target):
        duplicate = RelativeKey.from_triples(
            target, [("tel", "phn", "="), ("email", "email", "=")]
        )
        assert duplicate.covers(rck4)
        assert rck4.covers(duplicate)
        assert not duplicate.strictly_smaller_than(rck4)

    def test_operator_mismatch_breaks_cover(self, target):
        with_eq = RelativeKey.from_triples(target, [("FN", "FN", "=")])
        with_dl = RelativeKey.from_triples(target, [("FN", "FN", "dl(0.8)")])
        assert not with_eq.covers(with_dl)
        assert not with_dl.covers(with_eq)

    def test_is_candidate(self, target, rck1):
        shorter = RelativeKey.from_triples(
            target, [("LN", "LN", "="), ("addr", "post", "=")]
        )
        assert not is_candidate(rck1, [shorter])
        assert is_candidate(rck1, [rck1])  # itself is not *strictly* smaller
        assert is_candidate(shorter, [rck1])


class TestWithout:
    def test_removal(self, rck1):
        smaller = rck1.without(rck1.atoms[0])
        assert smaller.length == 2
        assert rck1.atoms[0] not in smaller.atoms

    def test_removing_last_triple_rejected(self, target):
        key = RelativeKey.from_triples(target, [("tel", "phn", "=")])
        with pytest.raises(ValueError):
            key.without(key.atoms[0])


class TestApplyMd:
    def test_paper_step_rck1_phi2_gives_rck2(self, rck1, pair, target):
        # Example 5.1(b): applying ϕ2 (tel=phn → addr⇌post) to rck1
        # replaces the address comparison with the phone comparison.
        phi2 = MatchingDependency(pair, [("tel", "phn", "=")], [("addr", "post")])
        rck2 = rck1.apply_md(phi2)
        assert set(rck2.attribute_pairs()) == {
            ("LN", "LN"),
            ("tel", "phn"),
            ("FN", "FN"),
        }

    def test_apply_removes_all_rhs_pairs(self, target, pair):
        key = RelativeKey.from_triples(
            target, [("FN", "FN", "="), ("LN", "LN", "="), ("tel", "phn", "=")]
        )
        phi3 = MatchingDependency(
            pair, [("email", "email", "=")], [("FN", "FN"), ("LN", "LN")]
        )
        applied = key.apply_md(phi3)
        assert set(applied.attribute_pairs()) == {
            ("tel", "phn"),
            ("email", "email"),
        }

    def test_apply_with_disjoint_rhs_augments(self, rck4, pair):
        # RHS pairs absent from the key: apply only adds the LHS tests,
        # producing a key covered by the original (findRCKs skips it).
        phi = MatchingDependency(pair, [("gender", "gender", "=")], [("type", "item")])
        applied = rck4.apply_md(phi)
        assert rck4.covers(applied)
        assert applied.length == 3

    def test_apply_deduplicates_lhs(self, target, pair):
        key = RelativeKey.from_triples(
            target, [("email", "email", "="), ("addr", "post", "=")]
        )
        phi = MatchingDependency(
            pair, [("email", "email", "=")], [("addr", "post")]
        )
        applied = key.apply_md(phi)
        # email appears once, not twice.
        assert applied.length == 1
        assert applied.attribute_pairs() == (("email", "email"),)

    def test_apply_rejects_foreign_pair(self, rck4, self_pair):
        foreign = MatchingDependency(
            self_pair, [("A", "A", "=")], [("B", "B")]
        )
        with pytest.raises(ValueError, match="different schema pair"):
            rck4.apply_md(foreign)

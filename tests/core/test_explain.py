"""Tests for explainable deduction."""

import pytest

from repro.core.closure import ClosureEngine
from repro.core.explain import explain
from repro.core.md import MatchingDependency
from repro.core.rck import RelativeKey
from repro.datagen.mdgen import generate_workload


@pytest.fixture
def rck4_md(target):
    return RelativeKey.from_triples(
        target, [("email", "email", "="), ("tel", "phn", "=")]
    ).to_md()


class TestExplainPositive:
    def test_rck4_derivation(self, pair, sigma, rck4_md):
        explanation = explain(pair, sigma, rck4_md)
        assert explanation.deduced
        kinds = [step.kind for step in explanation.steps]
        assert "premise" in kinds
        assert "fired" in kinds

    def test_rules_used_matches_example_41(self, pair, sigma, rck4_md):
        """Example 4.1: the closure applies ϕ2, ϕ3, then ϕ1."""
        explanation = explain(pair, sigma, rck4_md)
        used = explanation.rules_used()
        # All three MDs contribute (ϕ1 is normalized into several rules;
        # compare by LHS).
        used_lhs = {frozenset(rule.lhs) for rule in used}
        expected_lhs = {frozenset(dependency.lhs) for dependency in sigma}
        assert used_lhs == expected_lhs

    def test_steps_are_in_valid_order(self, pair, sigma, rck4_md):
        explanation = explain(pair, sigma, rck4_md)
        seen = set()
        for step in explanation.steps:
            for parent in step.parents:
                assert parent in seen, "parent fact used before derivation"
            seen.add(step.fact)

    def test_render_contains_trace(self, pair, sigma, rck4_md):
        text = explain(pair, sigma, rck4_md).render()
        assert "Sigma |=m phi: True" in text
        assert "[premise]" in text
        assert "[by MD:" in text

    def test_premises_only_for_reflexive_key(self, pair, target):
        identity = RelativeKey.identity_key(target).to_md()
        explanation = explain(pair, [], identity)
        assert explanation.deduced
        assert all(step.kind == "premise" for step in explanation.steps)


class TestExplainNegative:
    def test_failure_report(self, pair, sigma, target):
        email_only = RelativeKey.from_triples(
            target, [("email", "email", "=")]
        ).to_md()
        explanation = explain(pair, sigma, email_only)
        assert not explanation.deduced
        assert "No derivation" in explanation.render()

    def test_failure_lists_derivable_facts(self, pair, sigma, target):
        email_only = RelativeKey.from_triples(
            target, [("email", "email", "=")]
        ).to_md()
        explanation = explain(pair, sigma, email_only)
        # ϕ3 fires from the email premise: FN and LN facts are derivable.
        assert len(explanation.steps) >= 3


class TestAgreementWithEngine:
    @pytest.mark.parametrize("seed", [0, 5, 11, 40])
    def test_explain_agrees_with_closure_engine(self, seed):
        workload = generate_workload(md_count=10, target_length=4, seed=seed)
        pair, sigma = workload.pair, list(workload.sigma)
        engine = ClosureEngine(pair, sigma)
        probes = list(sigma[:4])
        for left, right in workload.target:
            probes.append(
                MatchingDependency(pair, sigma[0].lhs, [(left, right)])
            )
        for phi in probes:
            assert explain(pair, sigma, phi).deduced == engine.deduces(phi)

"""Acceptance criteria: batch equivalence and sublinear ingest cost.

* Streaming ingest of a generated duplicate-burst workload reaches the
  same final clusters as the batch :class:`EnforcementMatcher` on the
  same data and candidate keys.
* Ingesting one record into a 10k-record warm store performs at least
  10× fewer pair comparisons than re-running the batch pipeline,
  measured through the store's comparison counter.
"""

from __future__ import annotations

import pytest

from repro.core.schema import LEFT, RIGHT
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.engine import IncrementalMatcher
from repro.matching.blocking import multi_pass_block_pairs
from repro.matching.clustering import cluster_matches
from repro.matching.pipeline import EnforcementMatcher


def _batch_clusters(matcher, dataset, sigma):
    """Clusters of the batch enforcement matcher on the engine's keys."""
    keys = [(index.left_key, index.right_key) for index in matcher.store.indexes]
    candidates = multi_pass_block_pairs(dataset.credit, dataset.billing, keys)
    batch = EnforcementMatcher(sigma, dataset.target)
    result = batch.match(dataset.credit, dataset.billing, candidates=candidates)
    return {
        (cluster.left_tids, cluster.right_tids)
        for cluster in cluster_matches(result.matches)
    }, len(candidates)


@pytest.mark.parametrize(
    "make_stream",
    [duplicate_burst_stream, arrival_stream, late_duplicate_stream],
    ids=["duplicate-burst", "arrival", "late-duplicate"],
)
def test_streaming_reaches_batch_clusters(small_dataset, make_stream):
    """Same final clusters as the batch matcher, whatever the order."""
    sigma = extended_mds(small_dataset.pair)
    matcher = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    workload = make_stream(small_dataset, seed=5)
    matcher.ingest_stream(workload.events)
    streaming = {
        (cluster.left_tids, cluster.right_tids)
        for cluster in matcher.store.clusters()
    }
    expected, _ = _batch_clusters(matcher, small_dataset, sigma)
    assert streaming == expected


def test_streaming_clusters_recover_truth(small_dataset):
    """Sanity: the streamed clusters actually resolve entities well."""
    sigma = extended_mds(small_dataset.pair)
    matcher = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    matcher.ingest_stream(duplicate_burst_stream(small_dataset, seed=1).events)
    implied = set()
    for cluster in matcher.store.clusters():
        implied |= cluster.implied_pairs()
    truth = set(small_dataset.true_matches)
    true_positives = len(implied & truth)
    precision = true_positives / len(implied)
    recall = true_positives / len(truth)
    assert precision > 0.95
    assert recall > 0.5


def test_single_ingest_ten_times_fewer_comparisons():
    """One ingest into a 10k-record warm store beats a batch re-run 10×."""
    dataset = generate_dataset(10_000, seed=7)
    sigma = extended_mds(dataset.pair)
    matcher = IncrementalMatcher(sigma, dataset.target, top_k=5)
    store = matcher.store
    held_out = dataset.billing.rows()[-1]
    for row in dataset.credit.rows():
        store.add(LEFT, row.values(), tid=row.tid)
    for row in dataset.billing.rows():
        if row.tid != held_out.tid:
            store.add(RIGHT, row.values(), tid=row.tid)

    before = store.comparisons
    result = matcher.ingest(RIGHT, held_out.values())
    ingest_comparisons = store.comparisons - before
    assert ingest_comparisons == len(result.candidates)

    batch = EnforcementMatcher(sigma, dataset.target, window=10)
    batch_comparisons = len(
        batch.candidate_pairs(dataset.credit, dataset.billing)
    )
    assert ingest_comparisons > 0
    assert ingest_comparisons * 10 <= batch_comparisons


def test_stream_total_comparisons_stay_sublinear(small_dataset):
    """The whole stream costs far less than re-running batch per arrival."""
    sigma = extended_mds(small_dataset.pair)
    matcher = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    workload = duplicate_burst_stream(small_dataset, seed=2)
    matcher.ingest_stream(workload.events)
    _, batch_candidates = _batch_clusters(matcher, small_dataset, sigma)
    # Re-running the batch pipeline on every arrival would cost about
    # len(events) * batch_candidates comparisons; the stream's total must
    # be orders of magnitude below that (and of the same order as ONE
    # batch run).
    assert matcher.store.comparisons < 10 * batch_candidates
    assert matcher.store.comparisons < len(workload.events) * batch_candidates / 10

"""Snapshot → restore → ingest must equal a cold run over the full stream."""

from __future__ import annotations

import json

import pytest

from repro.datagen.schemas import extended_mds
from repro.datagen.streams import duplicate_burst_stream
from repro.engine import (
    IncrementalMatcher,
    SNAPSHOT_VERSION,
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)


@pytest.fixture
def stream(small_dataset):
    return duplicate_burst_stream(small_dataset, seed=13)


def _state(store):
    """Everything observable about a store, for equality assertions."""
    return {
        "left": {row.tid: row.values() for row in store.left},
        "right": {row.tid: row.values() for row in store.right},
        "clusters": sorted(
            (sorted(cluster.left_tids), sorted(cluster.right_tids))
            for cluster in store.clusters()
        ),
        "comparisons": store.comparisons,
        "merges": store.merges,
    }


def test_roundtrip_preserves_state(small_dataset, stream, tmp_path):
    sigma = extended_mds(small_dataset.pair)
    matcher = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    matcher.ingest_stream(stream.events[:100])
    path = tmp_path / "store.json"
    save_store(matcher.store, path)
    restored = load_store(path)
    assert _state(restored) == _state(matcher.store)
    # Arrival values made the trip too (consensus repairs depend on them).
    for row in matcher.store.right:
        assert restored.arrival_values(1, row.tid) == \
            matcher.store.arrival_values(1, row.tid)


def test_restore_then_ingest_equals_cold_run(small_dataset, stream, tmp_path):
    """Pause/resume anywhere in the stream without changing the outcome."""
    sigma = extended_mds(small_dataset.pair)
    events = stream.events[:200]
    cut = 120

    cold = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    cold.ingest_stream(events)

    first_half = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    first_half.ingest_stream(events[:cut])
    path = tmp_path / "checkpoint.json"
    save_store(first_half.store, path)

    resumed = IncrementalMatcher(
        sigma, small_dataset.target, store=load_store(path)
    )
    resumed.ingest_stream(events[cut:])
    assert _state(resumed.store) == _state(cold.store)


def test_snapshot_is_plain_json(small_dataset, stream, tmp_path):
    sigma = extended_mds(small_dataset.pair)
    matcher = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    matcher.ingest_stream(stream.events[:20])
    path = tmp_path / "store.json"
    save_store(matcher.store, path)
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["version"] == SNAPSHOT_VERSION
    assert data["schema"]["left"]["name"] == small_dataset.pair.left.name
    assert data["counters"]["comparisons"] == matcher.store.comparisons


def test_version_mismatch_rejected(small_dataset):
    sigma = extended_mds(small_dataset.pair)
    matcher = IncrementalMatcher(sigma, small_dataset.target, top_k=5)
    data = store_to_dict(matcher.store)
    data["version"] = 99
    with pytest.raises(ValueError, match="snapshot version"):
        store_from_dict(data)

"""The backend differential suite: SQLite ≡ in-memory, bit for bit.

Runs the full spec-driven streaming stack against both persistence
backends and asserts the *complete* observable state agrees — per-event
match results, final clusters, arrival and consensus values, cost
counters, index statistics — across every arrival scenario
:mod:`repro.datagen.streams` generates, plus the acceptance scenario the
durable backend exists for: killing the process mid-stream and resuming
from the database equals a never-interrupted run.
"""

from __future__ import annotations

import pytest

from repro.api import Workspace
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.engine import SQLiteMatchStore
from repro.engine.snapshot import store_to_dict

SCENARIOS = [duplicate_burst_stream, arrival_stream, late_duplicate_stream]
SCENARIO_IDS = ["duplicate-burst", "arrival", "late-duplicate"]


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(150, seed=11)


def _builder(dataset):
    return (
        Workspace.builder()
        .pair(dataset.pair)
        .target(dataset.target)
        .mds(extended_mds(dataset.pair))
        .execution(top_k=5)
    )


def _memory_workspace(dataset) -> Workspace:
    return _builder(dataset).workspace()


def _sqlite_workspace(dataset, path) -> Workspace:
    return _builder(dataset).persistence("sqlite", str(path)).workspace()


def _state(store):
    """The store's full observable state as one comparable document."""
    document = store_to_dict(store)
    document.update(stats=store.stats())
    # Backend identity and location legitimately differ.
    for key in ("backend", "path", "disk_bytes"):
        document["stats"].pop(key, None)
    return document


def _result_log(results):
    return [
        (r.side, r.tid, r.candidates, r.matches, r.merged,
         r.cascade_truncated)
        for r in results
    ]


def test_persistence_section_never_enters_fingerprint(dataset, tmp_path):
    """Same rules, different store backend → one fingerprint (so a store
    built under either spec resumes under the other)."""
    memory = _memory_workspace(dataset)
    durable = _sqlite_workspace(dataset, tmp_path / "s.db")
    assert memory.fingerprint == durable.fingerprint


@pytest.mark.parametrize("make_stream", SCENARIOS, ids=SCENARIO_IDS)
def test_backends_agree_on_every_scenario(dataset, make_stream, tmp_path):
    events = list(make_stream(dataset, seed=5).events)

    memory = _memory_workspace(dataset).stream()
    memory_results = memory.ingest_stream(events)

    durable = _sqlite_workspace(dataset, tmp_path / "store.db").stream()
    durable_results = durable.ingest_stream(events)

    assert _result_log(durable_results) == _result_log(memory_results)
    assert _state(durable.store) == _state(memory.store)
    durable.store.close()


@pytest.mark.parametrize("make_stream", SCENARIOS, ids=SCENARIO_IDS)
def test_kill_and_resume_equals_uninterrupted(dataset, make_stream, tmp_path):
    """Stop mid-stream, reopen the database cold, finish: same state."""
    events = list(make_stream(dataset, seed=5).events)
    cut = len(events) // 2
    path = tmp_path / "resumable.db"

    uninterrupted = _memory_workspace(dataset).stream()
    uninterrupted.ingest_stream(events)

    first = _sqlite_workspace(dataset, path).stream()
    first_results = first.ingest_stream(events[:cut])
    # Simulate the process dying: drop the connection, keep the file.
    first.store.close()

    # A brand-new workspace (fresh compile, fresh connection) resumes.
    resumed = _sqlite_workspace(dataset, path).stream()
    resumed_results = resumed.ingest_stream(events[cut:])

    assert _state(resumed.store) == _state(uninterrupted.store)
    combined = _result_log(first_results) + _result_log(resumed_results)
    direct = _result_log(
        _memory_workspace(dataset).stream().ingest_stream(events)
    )
    assert combined == direct
    resumed.store.close()


def test_uncommitted_tail_is_invisible_after_crash(dataset, tmp_path):
    """A transaction in flight when the process dies never surfaces."""
    path = tmp_path / "crash.db"
    events = list(arrival_stream(dataset, seed=5).events)
    matcher = _sqlite_workspace(dataset, path).stream()
    matcher.ingest_stream(events[:10])
    # A half-applied ingest the crash interrupts before commit:
    matcher.store.add(events[10].side, dict(events[10].values))
    matcher.store.comparisons += 999
    matcher.store.connection.close()  # die without commit

    reopened = SQLiteMatchStore(path)
    assert len(reopened.left) + len(reopened.right) == 10
    assert reopened.comparisons != 999
    reopened.close(commit=False)


def test_resume_under_changed_spec_is_rejected(dataset, tmp_path):
    from repro.api import SpecError

    path = tmp_path / "pinned.db"
    matcher = _sqlite_workspace(dataset, path).stream()
    matcher.ingest_stream(list(arrival_stream(dataset, seed=5).events)[:5])
    matcher.store.close()

    # Same RCK configuration (so the store itself opens fine), different
    # matching semantics — the fingerprint is what catches it.
    other = (
        _builder(dataset)
        .persistence("sqlite", str(path))
        .resolution("lexicographic-min")
        .workspace()
    )
    with pytest.raises(SpecError, match="built from spec"):
        other.stream()

    # A materially different rule configuration is rejected by the store
    # itself (the RCKs it was created with are pinned in its meta table).
    different_rules = (
        _builder(dataset)
        .persistence("sqlite", str(path))
        .execution(top_k=3)
        .workspace()
    )
    with pytest.raises(ValueError, match="different"):
        different_rules.stream()

"""MatchStore: indexing, probing, union-find clusters, counters."""

from __future__ import annotations

import pytest

from repro.core.findrcks import find_rcks
from repro.core.schema import LEFT, RIGHT
from repro.engine import MatchStore, RCKIndex, indexes_from_rcks, node_of
from repro.relations.relation import Relation


@pytest.fixture
def store(sigma, target):
    return MatchStore(target, find_rcks(sigma, target, m=5))


class TestRCKIndex:
    def test_probe_returns_other_side(self, pair):
        index = RCKIndex("ln", [("LN", "LN")])
        credit = Relation(pair.left)
        tid = credit.insert({"LN": "Clifford"})
        index.add(LEFT, credit[tid])
        billing = Relation(pair.right)
        other = billing.insert({"LN": "Clivord"})  # same Soundex code
        assert index.probe(RIGHT, billing[other]) == [tid]
        # A left-side probe must not return the left-side entry itself.
        assert index.probe(LEFT, credit[tid]) == []

    def test_unknown_key_probes_empty(self, pair):
        index = RCKIndex("ln", [("LN", "LN")])
        billing = Relation(pair.right)
        tid = billing.insert({"LN": "Smith"})
        assert index.probe(RIGHT, billing[tid]) == []

    def test_needs_pairs(self):
        with pytest.raises(ValueError):
            RCKIndex("empty", [])

    def test_indexes_from_rcks_dedupes(self, sigma, target):
        rcks = find_rcks(sigma, target, m=5)
        indexes = indexes_from_rcks(rcks, key_length=1)
        specs = [index.pairs for index in indexes]
        assert len(specs) == len(set(specs))
        assert 1 <= len(indexes) <= len(rcks)

    def test_indexes_from_rcks_validates(self, sigma, target):
        rcks = find_rcks(sigma, target, m=5)
        with pytest.raises(ValueError):
            indexes_from_rcks(rcks, key_length=0)
        with pytest.raises(ValueError):
            indexes_from_rcks([])


class TestMatchStore:
    def test_needs_rcks(self, target):
        with pytest.raises(ValueError):
            MatchStore(target, [])

    def test_add_registers_singleton(self, store):
        tid = store.add(LEFT, {"FN": "Mark", "LN": "Clifford"})
        cluster = store.cluster_of(LEFT, tid)
        assert cluster.left_tids == frozenset({tid})
        assert cluster.right_tids == frozenset()
        assert store.clusters() == []  # singletons are not matched clusters
        assert len(store.clusters(include_singletons=True)) == 1

    def test_arrival_values_are_immutable_copies(self, store):
        tid = store.add(LEFT, {"FN": "Mark", "LN": "Clifford"})
        arrival = store.arrival_values(LEFT, tid)
        arrival["FN"] = "damaged"
        assert store.arrival_values(LEFT, tid)["FN"] == "Mark"
        # Repairing the current value leaves the arrival copy alone.
        store.left.set_value(tid, "FN", "Marcus")
        assert store.arrival_values(LEFT, tid)["FN"] == "Mark"

    def test_neighbors_probe_all_indexes(self, store):
        left_tid = store.add(
            LEFT,
            {"FN": "Mark", "LN": "Clifford", "tel": "908-1111111",
             "addr": "10 Oak Street", "email": "mc@gm.com"},
        )
        # Shares only the phone with the stored record.
        right_tid = store.add(
            RIGHT,
            {"FN": "Zed", "LN": "Zz", "phn": "908-1111111",
             "post": "elsewhere", "email": "zz@xx.com"},
        )
        row = store.right[right_tid]
        assert store.neighbors(RIGHT, row) == [left_tid]

    def test_union_and_counters(self, store):
        left_tid = store.add(LEFT, {"FN": "Mark"})
        right_tid = store.add(RIGHT, {"FN": "Mark"})
        assert store.union(node_of(LEFT, left_tid), node_of(RIGHT, right_tid))
        assert not store.union(
            node_of(LEFT, left_tid), node_of(RIGHT, right_tid)
        )
        assert store.merges == 1
        assert store.same(node_of(LEFT, left_tid), node_of(RIGHT, right_tid))
        [cluster] = store.clusters()
        assert cluster.left_tids == frozenset({left_tid})
        assert cluster.right_tids == frozenset({right_tid})

    def test_explicit_tids_preserved(self, store):
        assert store.add(LEFT, {"FN": "A"}, tid=17) == 17
        assert store.add(LEFT, {"FN": "B"}) == 18

    def test_stats_shape(self, store):
        store.add(LEFT, {"FN": "Mark"})
        stats = store.stats()
        assert stats["left_rows"] == 1
        assert stats["right_rows"] == 0
        assert stats["matched_clusters"] == 0
        assert stats["comparisons"] == 0
        assert set(stats["indexes"]) == {index.name for index in store.indexes}

"""IncrementalMatcher: streaming ingest, bootstrap, and edge cases."""

from __future__ import annotations

import pytest

from repro.core.schema import LEFT, RIGHT
from repro.engine import IncrementalMatcher, MatchStore
from repro.matching.clustering import cluster_matches
from repro.matching.pipeline import EnforcementMatcher
from repro.relations.relation import Relation


@pytest.fixture
def matcher(sigma, target):
    return IncrementalMatcher(sigma, target, top_k=5)


def _ingest_fig1(matcher, fig1):
    _, credit, billing = fig1
    for row in credit:
        matcher.ingest(LEFT, row.values(), tid=row.tid)
    results = []
    for row in billing:
        results.append(matcher.ingest(RIGHT, row.values(), tid=row.tid))
    return results


class TestStreamingFig1:
    def test_billing_tuples_join_t1_cluster(self, matcher, fig1):
        """The paper's Fig. 1: all four billing tuples describe Mark.

        Enforcement matches them one by one as they arrive — including t4
        (tid 1), which no rule matches directly until ϕ2 has repaired the
        address (Example 2.2's dynamic-semantics cascade).
        """
        _ingest_fig1(matcher, fig1)
        cluster = matcher.store.cluster_of(LEFT, 0)
        assert cluster.left_tids == frozenset({0})
        assert cluster.right_tids == frozenset({0, 1, 2, 3})
        # David Smith (credit tid 1) stays a singleton.
        other = matcher.store.cluster_of(LEFT, 1)
        assert other.size == 1

    def test_matches_batch_enforcement(self, matcher, sigma, target, fig1):
        """Streaming reaches the batch matcher's clusters on Fig. 1."""
        _, credit, billing = fig1
        _ingest_fig1(matcher, fig1)
        streaming = {
            (cluster.left_tids, cluster.right_tids)
            for cluster in matcher.store.clusters()
        }
        batch = EnforcementMatcher(sigma, target)
        candidates = [
            (left_tid, right_tid)
            for left_tid in credit.tids()
            for right_tid in billing.tids()
        ]
        result = batch.match(credit, billing, candidates=candidates)
        expected = {
            (cluster.left_tids, cluster.right_tids)
            for cluster in cluster_matches(result.matches)
        }
        assert streaming == expected


class TestEdgeCases:
    def test_needs_mds(self, target):
        with pytest.raises(ValueError):
            IncrementalMatcher([], target)

    def test_store_target_mismatch(self, sigma, target, ext_sigma, ext_target):
        from repro.core.findrcks import find_rcks

        foreign = MatchStore(ext_target, find_rcks(ext_sigma, ext_target, m=3))
        with pytest.raises(ValueError, match="different target"):
            IncrementalMatcher(sigma, target, store=foreign)

    def test_empty_store_bootstrap(self, matcher, pair):
        """Bootstrapping from empty relations is a no-op, not an error."""
        result = matcher.bootstrap(Relation(pair.left), Relation(pair.right))
        assert (result.left_rows, result.right_rows) == (0, 0)
        assert result.candidates == 0
        assert result.matches == 0
        # The store still works afterwards.
        ingest = matcher.ingest(LEFT, {"FN": "Mark", "LN": "Clifford"})
        assert matcher.store.cluster_of(LEFT, ingest.tid).size == 1

    def test_bootstrap_requires_empty_store(self, matcher, pair):
        matcher.ingest(LEFT, {"FN": "Mark"})
        with pytest.raises(ValueError, match="empty store"):
            matcher.bootstrap(Relation(pair.left), Relation(pair.right))

    def test_reingesting_identical_record_is_idempotent(self, matcher, fig1):
        """A replayed record joins the existing cluster, creating none."""
        _, credit, billing = fig1
        matcher.ingest(LEFT, credit[0].values())
        first = matcher.ingest(RIGHT, billing[3].values())
        assert matcher.store.same(("L", 0), ("R", first.tid))
        clusters_before = len(matcher.store.clusters())
        replay = matcher.ingest(RIGHT, billing[3].values())
        assert replay.matches  # matched again, into the same cluster
        assert len(matcher.store.clusters()) == clusters_before
        assert matcher.store.same(("R", first.tid), ("R", replay.tid))

    def test_unicode_values(self, matcher):
        """Non-ASCII names survive indexing, matching and clustering."""
        left = matcher.ingest(
            LEFT,
            {"FN": "Müller", "LN": "北京", "addr": "Ünterstraße 1",
             "tel": "030-555", "email": "mü@例.com", "gender": "F"},
        )
        right = matcher.ingest(
            RIGHT,
            {"FN": "Müller", "LN": "北京", "post": "Ünterstraße 1",
             "phn": "030-555", "email": "mü@例.com", "gender": "F"},
        )
        assert right.matches == ((left.tid, right.tid),)

    def test_none_values(self, matcher):
        """Records with null attributes never crash and never match on nulls.

        Equality and similarity on nulls are false (a missing value
        carries no evidence), so two all-null records stay apart.
        """
        left = matcher.ingest(LEFT, {"FN": None, "LN": None})
        right = matcher.ingest(RIGHT, {"FN": None, "LN": None})
        assert right.matches == ()
        assert matcher.store.cluster_of(LEFT, left.tid).size == 1
        assert matcher.store.cluster_of(RIGHT, right.tid).size == 1


class TestBootstrap:
    def test_bootstrap_matches_streaming(self, sigma, target, fig1):
        """Warm-starting from batch data equals streaming the same rows."""
        _, credit, billing = fig1
        warm = IncrementalMatcher(sigma, target, top_k=5)
        warm.bootstrap(credit, billing)
        cold = IncrementalMatcher(sigma, target, top_k=5)
        _ingest_fig1(cold, fig1)
        assert warm.store.clusters() == cold.store.clusters()
        # Tuple ids were preserved, so rows line up with the sources.
        assert sorted(warm.store.left.tids()) == sorted(credit.tids())

    def test_bootstrap_then_stream(self, sigma, target, fig1):
        """Ingesting after a bootstrap matches against the warm state."""
        _, credit, billing = fig1
        matcher = IncrementalMatcher(sigma, target, top_k=5)
        matcher.bootstrap(credit, Relation(target.pair.right))
        result = matcher.ingest(RIGHT, billing[3].values())
        assert (0, result.tid) in result.matches

"""Unit behavior of the durable SQLite-backed match store."""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.schema import LEFT, RIGHT
from repro.datagen.schemas import credit_billing_pair, paper_mds, paper_target
from repro.core.findrcks import find_rcks
from repro.engine import MatchStore, SQLiteMatchStore
from repro.engine.sqlite import SQLITE_MAGIC, is_sqlite_file


@pytest.fixture(scope="module")
def config():
    pair = credit_billing_pair()
    target = paper_target(pair)
    rcks = find_rcks(paper_mds(pair), target, m=5)
    return target, rcks


ROW = {"c#": "111", "FN": "Mark", "LN": "Clifford", "tel": "212-5550234"}
MATCHING_ROW = {
    "c#": "111", "FN": "Marx", "LN": "Clifford", "phn": "212-5550234",
}


@pytest.fixture
def store(config, tmp_path):
    target, rcks = config
    store = SQLiteMatchStore(tmp_path / "store.db", target, rcks)
    yield store
    store.close(commit=False)


class TestCreateAndOpen:
    def test_new_store_requires_configuration(self, tmp_path):
        with pytest.raises(ValueError, match="requires"):
            SQLiteMatchStore(tmp_path / "fresh.db")

    def test_file_is_sqlite(self, store, config):
        store.close()
        assert is_sqlite_file(store.path)
        assert store.path.read_bytes()[: len(SQLITE_MAGIC)] == SQLITE_MAGIC

    def test_reopen_restores_configuration(self, store, config, tmp_path):
        target, rcks = config
        store.add(LEFT, ROW)
        store.close()
        reopened = SQLiteMatchStore(store.path)
        assert reopened.target == target
        assert reopened.rcks == list(rcks)
        assert [index.name for index in reopened.indexes] == [
            index.name for index in store.indexes
        ]
        assert len(reopened.left) == 1
        reopened.close(commit=False)

    def test_reopen_with_matching_configuration_accepted(self, store, config):
        target, rcks = config
        store.close()
        reopened = SQLiteMatchStore(store.path, target, rcks)
        assert reopened.target == target
        reopened.close(commit=False)

    def test_reopen_with_different_configuration_rejected(self, store, config):
        target, rcks = config
        store.close()
        with pytest.raises(ValueError, match="different"):
            SQLiteMatchStore(store.path, target, rcks, key_length=2)

    def test_unsupported_schema_version_rejected(self, store):
        store.connection.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
        )
        store.close()
        with pytest.raises(ValueError, match="schema version"):
            SQLiteMatchStore(store.path)

    def test_warm_open_reads_no_records(self, store):
        """Opening is O(1): no record rows are fetched until touched."""
        for position in range(50):
            store.add(LEFT, dict(ROW, FN=f"N{position}"))
        store.close()
        reopened = SQLiteMatchStore(store.path)
        assert reopened.left._cache == {}
        assert reopened.right._cache == {}
        # First touch pages exactly the requested row in.
        assert reopened.left[3]["FN"] == "N3"
        assert set(reopened.left._cache) == {3}
        reopened.close(commit=False)


class TestRecords:
    def test_add_and_read_back(self, store):
        tid = store.add(LEFT, ROW)
        row = store.left[tid]
        assert row["FN"] == "Mark"
        # Attributes not supplied complete to None, like Relation.insert.
        assert row["SSN"] is None

    def test_unknown_attribute_rejected(self, store):
        with pytest.raises(KeyError, match="nope"):
            store.add(LEFT, {"nope": "x"})

    def test_duplicate_tid_rejected(self, store):
        store.add(LEFT, ROW, tid=7)
        with pytest.raises(ValueError, match="already present"):
            store.add(LEFT, ROW, tid=7)

    def test_set_value_keeps_arrival_immutable(self, store):
        tid = store.add(LEFT, ROW)
        store.left.set_value(tid, "FN", "Marcus")
        assert store.left[tid]["FN"] == "Marcus"
        assert store.arrival_values(LEFT, tid)["FN"] == "Mark"
        store.commit()
        reopened = SQLiteMatchStore(store.path)
        assert reopened.left[tid]["FN"] == "Marcus"
        assert reopened.arrival_values(LEFT, tid)["FN"] == "Mark"
        reopened.close(commit=False)

    def test_rows_iterate_in_insertion_order(self, store):
        store.add(LEFT, ROW, tid=5)
        store.add(LEFT, dict(ROW, FN="Second"), tid=2)
        assert [row.tid for row in store.left] == [5, 2]
        assert store.left.tids() == [5, 2]


class TestMatchingInterface:
    def test_neighbors_probe_other_side(self, store):
        left_tid = store.add(LEFT, ROW)
        right_tid = store.add(RIGHT, MATCHING_ROW)
        assert store.neighbors(LEFT, store.arrival_row(LEFT, left_tid)) == [
            right_tid
        ]
        assert store.neighbors(
            RIGHT, store.arrival_row(RIGHT, right_tid)
        ) == [left_tid]

    def test_union_find_and_clusters(self, store):
        left_tid = store.add(LEFT, ROW)
        right_tid = store.add(RIGHT, MATCHING_ROW)
        assert not store.same(("L", left_tid), ("R", right_tid))
        assert store.union(("L", left_tid), ("R", right_tid))
        assert not store.union(("L", left_tid), ("R", right_tid))
        assert store.same(("L", left_tid), ("R", right_tid))
        assert store.merges == 1
        cluster = store.cluster_of(LEFT, left_tid)
        assert cluster.left_tids == frozenset({left_tid})
        assert cluster.right_tids == frozenset({right_tid})
        assert store.clusters() == [cluster]

    def test_singletons_only_reported_on_request(self, store):
        store.add(LEFT, ROW)
        assert store.clusters() == []
        singles = store.clusters(include_singletons=True)
        assert len(singles) == 1


class TestDurability:
    def test_commit_persists_rollback_discards(self, store):
        store.add(LEFT, ROW, tid=0)
        store.commit()
        store.add(LEFT, dict(ROW, FN="Gone"), tid=1)
        store.comparisons += 10
        store.rollback()
        assert 1 not in store.left
        assert store.comparisons == 0
        assert len(store.left) == 1
        reopened = SQLiteMatchStore(store.path)
        assert reopened.left.tids() == [0]
        reopened.close(commit=False)

    def test_counters_survive_reopen(self, store):
        store.comparisons = 17
        store.merges = 3
        store.close()
        reopened = SQLiteMatchStore(store.path)
        assert reopened.comparisons == 17
        assert reopened.merges == 3
        reopened.close(commit=False)

    def test_fingerprint_round_trips(self, store):
        assert store.spec_fingerprint is None
        store.spec_fingerprint = "abc123"
        store.commit()
        reopened = SQLiteMatchStore(store.path)
        assert reopened.spec_fingerprint == "abc123"
        reopened.close(commit=False)

    def test_context_manager_commits(self, config, tmp_path):
        target, rcks = config
        with SQLiteMatchStore(tmp_path / "ctx.db", target, rcks) as store:
            store.add(LEFT, ROW)
        reopened = SQLiteMatchStore(tmp_path / "ctx.db")
        assert len(reopened.left) == 1
        reopened.close(commit=False)


class TestStats:
    def test_backend_and_disk_size_reported(self, store):
        store.add(LEFT, ROW)
        store.commit()
        stats = store.stats()
        assert stats["backend"] == "sqlite"
        assert stats["path"] == str(store.path)
        assert stats["disk_bytes"] > 0
        assert stats["left_rows"] == 1

    def test_memory_store_reports_backend(self, config):
        target, rcks = config
        stats = MatchStore(target, rcks).stats()
        assert stats["backend"] == "memory"
        assert "disk_bytes" not in stats

    def test_index_stats_match_memory_backend(self, store, config):
        target, rcks = config
        memory = MatchStore(target, rcks)
        for s in (store, memory):
            s.add(LEFT, ROW)
            s.add(RIGHT, MATCHING_ROW)
        assert store.stats()["indexes"] == memory.stats()["indexes"]


def test_garbage_file_is_not_sqlite(tmp_path):
    path = tmp_path / "garbage.db"
    path.write_text("not a database")
    assert not is_sqlite_file(path)
    with pytest.raises((ValueError, sqlite3.DatabaseError)):
        SQLiteMatchStore(path)

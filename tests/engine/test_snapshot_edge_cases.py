"""Persistence edge cases every backend must honor, parametrized over both.

Each case pins a piece of state that is easy to drop on the floor when
serializing: the cost counters, arrival values that differ from repaired
consensus values, and singleton clusters.  ``roundtrip`` closes over the
backend: the memory store round-trips through a JSON snapshot file, the
SQLite store through close-and-reopen — either way the reloaded store
must be observably identical.
"""

from __future__ import annotations

import pytest

from repro.core.schema import LEFT, RIGHT
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import duplicate_burst_stream
from repro.engine import (
    IncrementalMatcher,
    MatchStore,
    SQLiteMatchStore,
    load_store,
    save_store,
)
from repro.engine.snapshot import store_to_dict


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(100, seed=23)


@pytest.fixture(scope="module")
def sigma(dataset):
    return extended_mds(dataset.pair)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    """(make_store, roundtrip) for one backend."""
    if request.param == "memory":
        def make_store(target, rcks):
            return MatchStore(target, rcks)

        def roundtrip(store):
            path = tmp_path / "snapshot.json"
            save_store(store, path)
            return load_store(path)

    else:
        def make_store(target, rcks):
            return SQLiteMatchStore(tmp_path / "store.db", target, rcks)

        def roundtrip(store):
            store.close()
            return SQLiteMatchStore(store.path)

    return make_store, roundtrip


def _matcher(sigma, dataset, store=None):
    if store is None:
        return IncrementalMatcher(sigma, dataset.target, top_k=5)
    return IncrementalMatcher(sigma, dataset.target, store=store)


def test_counters_round_trip_exactly(dataset, sigma, backend):
    make_store, roundtrip = backend
    reference = _matcher(sigma, dataset)
    store = make_store(dataset.target, reference.store.rcks)
    matcher = _matcher(sigma, dataset, store)
    matcher.ingest_stream(duplicate_burst_stream(dataset, seed=3).events[:60])
    assert store.comparisons > 0 and store.merges > 0
    reloaded = roundtrip(store)
    assert reloaded.comparisons == matcher.store.comparisons
    assert reloaded.merges == matcher.store.merges


def test_arrival_values_survive_consensus_repair(dataset, sigma, backend):
    """After a repair rewrites current values, *both* value sets persist
    and probing still derives keys from the arrival ones."""
    make_store, roundtrip = backend
    reference = _matcher(sigma, dataset)
    store = make_store(dataset.target, reference.store.rcks)
    matcher = _matcher(sigma, dataset, store)
    matcher.ingest_stream(duplicate_burst_stream(dataset, seed=3).events[:80])
    repaired = [
        (side, row.tid)
        for side, relation in ((LEFT, store.left), (RIGHT, store.right))
        for row in relation
        if row.values() != store.arrival_values(side, row.tid)
    ]
    assert repaired, "expected at least one consensus repair in this stream"
    expected = {
        (side, tid): (
            store.arrival_values(side, tid),
            store.relation(side)[tid].values(),
            store.neighbors(side, store.arrival_row(side, tid)),
        )
        for side, tid in repaired
    }
    reloaded = roundtrip(store)
    for (side, tid), (arrival, current, neighbors) in expected.items():
        assert reloaded.arrival_values(side, tid) == arrival
        assert reloaded.relation(side)[tid].values() == current
        # The store still probes by arrival values after the trip.
        assert reloaded.neighbors(
            side, reloaded.arrival_row(side, tid)
        ) == neighbors


def test_singleton_clusters_round_trip(dataset, sigma, backend):
    make_store, roundtrip = backend
    reference = _matcher(sigma, dataset)
    store = make_store(dataset.target, reference.store.rcks)
    # Two records that match nothing: both stay singleton clusters.
    left_tid = store.add(LEFT, {"FN": "Zebulon", "LN": "Quixote"})
    right_tid = store.add(RIGHT, {"FN": "Aurelia", "LN": "Xanthos"})
    store.comparisons += 1
    original = store_to_dict(store)
    reloaded = roundtrip(store)
    assert reloaded.clusters() == []
    singles = reloaded.clusters(include_singletons=True)
    assert len(singles) == 2
    assert reloaded.cluster_of(LEFT, left_tid).left_tids == {left_tid}
    assert reloaded.cluster_of(RIGHT, right_tid).right_tids == {right_tid}
    # And the canonical snapshot document agrees with the original's.
    assert store_to_dict(reloaded) == original

"""The ``serve`` spec section and the store-leak regression suite.

The serve section is *deployment-only*: batch boundaries provably never
change results (``test_batch_invariance.py``), so none of its knobs may
enter the spec fingerprint — tenants are keyed by fingerprint and must
survive a deployment retune.  The leak tests pin the
``Workspace.stream()`` contract the service's lazy tenants rely on:
every rejection path, including failures *after* validation passes,
closes a store the call opened itself.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.api.spec import ResolutionSpec, SpecError
from repro.api.workspace import Workspace

from serve_helpers import ServeClient, builder, dataset, start_server


def _spec_document(**serve):
    document = builder(dataset()).build().to_dict()
    if serve:
        document["serve"] = serve
    else:
        document.pop("serve", None)
    return document


# ----------------------------------------------------------------------
# Section parsing and validation
# ----------------------------------------------------------------------


def test_serve_section_defaults_when_absent():
    spec = ResolutionSpec.from_dict(_spec_document())
    assert spec.serve_host == "127.0.0.1"
    assert spec.serve_port == 8080
    assert spec.serve_max_batch == 16
    assert spec.serve_max_delay_ms == 10
    assert spec.serve_queue_limit == 1024


def test_builder_serve_round_trips_to_fixed_point():
    spec = (
        builder(dataset())
        .serve(host="0.0.0.0", port=9090, max_batch=64, max_delay_ms=25,
               queue_limit=4096)
        .build()
    )
    document = spec.to_dict()
    assert document["serve"] == {
        "host": "0.0.0.0",
        "port": 9090,
        "max_batch": 64,
        "max_delay_ms": 25,
        "queue_limit": 4096,
    }
    again = ResolutionSpec.from_dict(document)
    assert again.to_dict() == document


@pytest.mark.parametrize(
    "section, fragment",
    [
        ({"listen": 1}, "unknown"),
        ({"port": 70000}, "port"),
        ({"port": "http"}, "port"),
        ({"port": -1}, "port"),
        ({"host": ""}, "host"),
        ({"max_batch": 0}, "max_batch"),
        ({"max_delay_ms": -1}, "max_delay_ms"),
        ({"queue_limit": 0}, "queue_limit"),
    ],
)
def test_serve_section_rejects_bad_values(section, fragment):
    with pytest.raises(SpecError) as excinfo:
        ResolutionSpec.from_dict(_spec_document(**section))
    assert any(fragment in error for error in excinfo.value.errors)


def test_port_zero_is_legal_ephemeral():
    spec = ResolutionSpec.from_dict(_spec_document(port=0))
    assert spec.serve_port == 0


# ----------------------------------------------------------------------
# Fingerprint exclusion
# ----------------------------------------------------------------------


def test_serve_knobs_never_enter_the_fingerprint():
    base = ResolutionSpec.from_dict(_spec_document())
    retuned = ResolutionSpec.from_dict(
        _spec_document(
            host="0.0.0.0", port=9999, max_batch=128, max_delay_ms=50,
            queue_limit=9
        )
    )
    assert base.fingerprint() == retuned.fingerprint()
    # ...while a rules change (what matching actually does) still moves it.
    document = _spec_document()
    document["rules"]["top_k"] = 3
    assert ResolutionSpec.from_dict(document).fingerprint() != base.fingerprint()


# ----------------------------------------------------------------------
# Workspace.stream() leak regression (the tenants' lazy-open path)
# ----------------------------------------------------------------------


def _capture_open_store(monkeypatch):
    """Record every store ``Workspace.open_store`` hands out."""
    opened = []
    original = Workspace.open_store

    def capturing(self, path=None):
        store = original(self, path)
        opened.append(store)
        return store

    monkeypatch.setattr(Workspace, "open_store", capturing)
    return opened


def _assert_closed(store):
    with pytest.raises(sqlite3.ProgrammingError):
        store.connection.execute("SELECT 1")


def test_mismatched_fingerprint_rejects_without_leaking(tmp_path, monkeypatch):
    path = str(tmp_path / "stamped.db")
    stamped = builder(dataset()).persistence("sqlite", path).workspace()
    stamped.stream().store.close()

    # Same store file, different rules -> different fingerprint.
    mismatched = (
        builder(dataset())
        .resolution("lexicographic-min")
        .persistence("sqlite", path)
        .workspace()
    )
    opened = _capture_open_store(monkeypatch)
    with pytest.raises(SpecError) as excinfo:
        mismatched.stream()
    assert any("built from spec" in error for error in excinfo.value.errors)
    assert len(opened) == 1
    _assert_closed(opened[0])


def test_failure_after_validation_closes_self_opened_store(
    tmp_path, monkeypatch
):
    """The regression: matcher construction / fingerprint stamping run
    *after* the validation block, and used to leave the connection open
    when they raised."""
    workspace = (
        builder(dataset())
        .persistence("sqlite", str(tmp_path / "fresh.db"))
        .workspace()
    )
    opened = _capture_open_store(monkeypatch)

    def explode(*args, **kwargs):
        raise RuntimeError("post-validation construction failure")

    monkeypatch.setattr(
        "repro.engine.matcher.IncrementalMatcher", explode
    )
    with pytest.raises(RuntimeError, match="post-validation"):
        workspace.stream()
    assert len(opened) == 1
    _assert_closed(opened[0])


def test_caller_owned_store_stays_open_on_rejection(tmp_path):
    """A store the *caller* passed in is the caller's to close — the
    rejection must not close it out from under them."""
    path = str(tmp_path / "mine.db")
    stamped = builder(dataset()).persistence("sqlite", path).workspace()
    stamped.stream().store.close()

    mismatched = (
        builder(dataset())
        .resolution("lexicographic-min")
        .persistence("sqlite", path)
        .workspace()
    )
    mine = Workspace(
        builder(dataset()).persistence("sqlite", path).build()
    ).open_store()
    try:
        with pytest.raises(SpecError):
            mismatched.stream(store=mine)
        mine.connection.execute("SELECT 1")  # still open: ours to close
    finally:
        mine.close(commit=False)


# ----------------------------------------------------------------------
# The same rejection over HTTP: a 400, never a wedged server
# ----------------------------------------------------------------------


def test_reload_onto_mismatched_store_fails_requests_not_server(
    tmp_path, monkeypatch
):
    path = str(tmp_path / "foreign.db")
    stamped = builder(dataset()).persistence("sqlite", path).workspace()
    stamped.stream().store.close()

    opened = _capture_open_store(monkeypatch)
    spec = builder(dataset()).serve(port=0, max_delay_ms=0).build()
    thread, host, port = start_server(spec)
    try:
        client = ServeClient(host, port)
        try:
            # Hot-swap to a spec whose durable store was stamped by a
            # different fingerprint.  The reload itself succeeds — the
            # store opens lazily — but every ingest against it must be
            # a clean 400 carrying the spec errors.
            foreign = (
                builder(dataset())
                .resolution("lexicographic-min")
                .persistence("sqlite", path)
                .build()
            )
            status, body, _ = client.request(
                "POST", "/admin/reload", foreign.to_dict()
            )
            assert status == 200 and body["reloaded"] is True

            for _ in range(2):  # still serviceable after the first failure
                status, body, _ = client.request(
                    "POST",
                    "/ingest",
                    {"side": "left", "values": {}},
                )
                assert status == 400
                assert any(
                    "built from spec" in error for error in body["errors"]
                )

            status, body, _ = client.request("GET", "/healthz")
            assert status == 200
            assert body["tenants"][foreign.fingerprint()]["opened"] is False
        finally:
            client.close()
    finally:
        thread.stop()
    # Every rejected lazy open closed its connection before raising.
    assert opened
    for store in opened:
        _assert_closed(store)

"""Batch-boundary invariance: any micro-batching ≡ one-at-a-time.

The service's correctness argument leans on one property: however the
micro-batch queue happens to slice the arrival order — load bursts,
timer expiries, queue drains — running
:meth:`IncrementalMatcher.ingest_batch` over the slices produces the
same store state *and the same per-event results* as ingesting every
record individually.  Hypothesis draws random partitions of a record
stream into consecutive micro-batches and checks exactly that, against
both chase paths: the pooled-screen hash path and the
sorted-neighborhood sequential fallback.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.streams import arrival_stream, duplicate_burst_stream

from serve_helpers import builder, dataset, state


def _events():
    return list(arrival_stream(dataset(60, seed=7), seed=3).events)


def _partition(events, cut_points):
    """Split ``events`` into consecutive batches at the cut points."""
    bounds = sorted({cut for cut in cut_points if 0 < cut < len(events)})
    batches = []
    start = 0
    for bound in bounds + [len(events)]:
        if bound > start:
            batches.append(events[start:bound])
            start = bound
    return batches


def _result_log(results):
    return [
        (r.side, r.tid, r.candidates, r.matches, r.merged,
         r.cascade_truncated)
        for r in results
    ]


def _reference(backend="hash"):
    matcher = builder(dataset(60, seed=7), backend=backend).workspace().stream()
    results = matcher.ingest_stream(_events())
    return state(matcher.store), _result_log(results)


@settings(max_examples=20, deadline=None)
@given(
    cut_points=st.lists(
        st.integers(min_value=1, max_value=200), max_size=12
    )
)
def test_any_partition_equals_one_at_a_time(cut_points):
    events = _events()
    expected_state, expected_results = _reference()

    matcher = builder(dataset(60, seed=7)).workspace().stream()
    results = []
    for batch in _partition(events, cut_points):
        results.extend(matcher.ingest_batch(batch))

    assert _result_log(results) == expected_results
    assert state(matcher.store) == expected_state


@settings(max_examples=6, deadline=None)
@given(
    cut_points=st.lists(
        st.integers(min_value=1, max_value=200), max_size=6
    )
)
def test_sorted_neighborhood_fallback_is_invariant_too(cut_points):
    """SN blocking cannot pool the chase (ranks shift with every add) —
    ``ingest_batch`` falls back to exact sequential ingest, so the same
    invariance must hold along that path."""
    events = _events()
    expected_state, expected_results = _reference(backend="sorted-neighborhood")

    matcher = (
        builder(dataset(60, seed=7), backend="sorted-neighborhood")
        .workspace()
        .stream()
    )
    results = []
    for batch in _partition(events, cut_points):
        results.extend(matcher.ingest_batch(batch))

    assert _result_log(results) == expected_results
    assert state(matcher.store) == expected_state


def test_one_big_batch_equals_stream(tmp_path):
    """The extreme partition — everything in one batch — agrees too, on
    both store backends (the durable store commits once per batch)."""
    events = list(duplicate_burst_stream(dataset(60, seed=7), seed=3).events)

    reference = builder(dataset(60, seed=7)).workspace().stream()
    reference_results = reference.ingest_stream(events)

    durable = (
        builder(dataset(60, seed=7))
        .persistence("sqlite", str(tmp_path / "batch.db"))
        .workspace()
        .stream()
    )
    durable_results = durable.ingest_batch(events)

    assert _result_log(durable_results) == _result_log(reference_results)
    assert state(durable.store) == state(reference.store)
    durable.store.close()

"""Shared helpers for the service test suites.

Everything here keeps one invariant front and center: what the HTTP
service does must be *bit-identical* to the offline ``Workspace`` path.
The helpers therefore expose the same ``_state`` comparison surface the
backend differential suite uses (full snapshot document plus cost
counters, minus backend identity keys) and a tiny synchronous HTTP
client (stdlib ``http.client``) so tests drive the real wire protocol,
not a shortcut into the handler functions.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple

from repro.api import Workspace
from repro.core.schema import LEFT
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.engine.snapshot import store_to_dict
from repro.serve import ResolutionServer, ServerThread

_DATASETS: Dict[Tuple[int, int], object] = {}


def dataset(size: int = 120, seed: int = 11):
    """A cached test dataset (generation is the slow part)."""
    key = (size, seed)
    if key not in _DATASETS:
        _DATASETS[key] = generate_dataset(size, seed=seed)
    return _DATASETS[key]


def builder(dataset, backend: str = "hash"):
    """The suite's spec builder: hash blocking (the batched-chase path)."""
    return (
        Workspace.builder()
        .pair(dataset.pair)
        .target(dataset.target)
        .mds(extended_mds(dataset.pair))
        .blocking(backend)
        .execution(top_k=5)
    )


def state(store) -> Dict[str, object]:
    """The store's full observable state as one comparable document."""
    document = store_to_dict(store)
    document.update(stats=store.stats())
    for key in ("backend", "path", "disk_bytes"):
        document["stats"].pop(key, None)
    return document


def event_record(event) -> Dict[str, object]:
    """A stream event as the wire-shape ``/ingest`` record."""
    return {
        "side": "left" if event.side == LEFT else "right",
        "values": dict(event.values),
        "tid": event.tid,
    }


class ServeClient:
    """A keep-alive JSON client over stdlib ``http.client``."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    def request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Tuple[int, object, Dict[str, str]]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body)
            headers["Content-Type"] = "application/json"
        self.connection.request(method, path, body=payload, headers=headers)
        response = self.connection.getresponse()
        raw = response.read()
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        if response_headers.get("content-type", "").startswith(
            "application/json"
        ):
            parsed: object = json.loads(raw) if raw else None
        else:
            parsed = raw.decode("utf-8")
        return response.status, parsed, response_headers

    def close(self) -> None:
        self.connection.close()


def start_server(spec, **overrides) -> Tuple[ServerThread, str, int]:
    """A running server on an ephemeral port; caller stops the thread."""
    server = ResolutionServer(spec, port=0, **overrides)
    thread = ServerThread(server)
    host, port = thread.start()
    return thread, host, port

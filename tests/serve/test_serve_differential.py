"""The service differential suite: HTTP ≡ offline, bit for bit.

Concurrent clients ingest every stream scenario over the real wire
protocol (stdlib ``http.client`` against the asyncio server) and the
final store state — snapshot document, clusters, consensus values,
comparisons/merges counters — must equal an offline
``Workspace.stream()`` replay *one record at a time*, for both store
backends.  The server assigns each ingest a monotonically increasing
``seq`` in processing order; replaying events in seq order makes the
comparison exact regardless of client interleaving, and the
batch-boundary invariance property (``test_batch_invariance.py``)
bridges the server's micro-batches to the one-at-a-time replay.
"""

from __future__ import annotations

import threading

import pytest

from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.engine import SQLiteMatchStore

from serve_helpers import (
    ServeClient,
    builder,
    dataset,
    event_record,
    start_server,
    state,
)

SCENARIOS = [duplicate_burst_stream, arrival_stream, late_duplicate_stream]
SCENARIO_IDS = ["duplicate-burst", "arrival", "late-duplicate"]
BACKENDS = ["memory", "sqlite"]

CLIENTS = 4


def _spec(tmp_path, backend):
    spec_builder = builder(dataset()).serve(
        port=0, max_batch=8, max_delay_ms=20
    )
    if backend == "sqlite":
        spec_builder = spec_builder.persistence(
            "sqlite", str(tmp_path / "serve.db")
        )
    return spec_builder.build()


def _ingest_concurrently(host, port, events):
    """``CLIENTS`` threads ingest a partition each; (seq, event, result)."""
    outcomes = []
    outcome_lock = threading.Lock()
    failures = []

    def client_worker(worker_events):
        client = ServeClient(host, port)
        try:
            for event in worker_events:
                status, body, _ = client.request(
                    "POST", "/ingest", event_record(event)
                )
                if status != 200:
                    failures.append((status, body))
                    return
                (result,) = body["results"]
                with outcome_lock:
                    outcomes.append((result["seq"], event, result))
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_worker, args=(events[index::CLIENTS],))
        for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, f"ingest failed: {failures[:3]}"
    return outcomes


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("make_stream", SCENARIOS, ids=SCENARIO_IDS)
def test_http_ingest_equals_offline_stream(make_stream, backend, tmp_path):
    events = list(make_stream(dataset(), seed=5).events)
    spec = _spec(tmp_path, backend)
    thread, host, port = start_server(spec)
    try:
        outcomes = _ingest_concurrently(host, port, events)
        assert len(outcomes) == len(events)
        seqs = sorted(seq for seq, _, _ in outcomes)
        assert seqs == list(range(len(events)))

        server_store = thread.server.tenant.matcher.store
        server_state = state(server_store)
        server_fingerprint = server_store.spec_fingerprint
    finally:
        thread.stop()

    # Offline replay in the server's processing order, one at a time.
    outcomes.sort(key=lambda item: item[0])
    offline = builder(dataset()).workspace().stream()
    offline_results = offline.ingest_stream(
        [event for _, event, _ in outcomes]
    )

    assert server_state == state(offline.store)
    assert server_fingerprint == spec.fingerprint()

    # Per-event results agree too: the wire response at seq k is the
    # offline result of ingesting the k-th processed record.
    for (_, _, wire), result in zip(outcomes, offline_results):
        assert wire["tid"] == result.tid
        assert wire["candidates"] == len(result.candidates)
        assert wire["matches"] == [list(pair) for pair in result.matches]
        assert wire["merged"] == result.merged

    if backend == "sqlite":
        # The graceful stop committed and closed; a cold reopen of the
        # database sees the identical state (restart durability).
        reopened = SQLiteMatchStore(tmp_path / "serve.db")
        try:
            assert state(reopened) == server_state
            assert reopened.spec_fingerprint == spec.fingerprint()
        finally:
            reopened.close(commit=False)


def test_batched_service_does_fewer_chases_than_per_record():
    """The micro-batch queue actually amortizes: ingesting through the
    service costs strictly fewer enforcement chases than one-at-a-time
    offline ingest of the same events.  The workload is serving-shaped —
    a warm partial customer base, then live billing traffic, most of it
    from unknown holders — because an all-duplicates stream leaves
    nothing to amortize (every record's neighborhood is dirty).  The
    full ≥2× claim at scale is ``benchmarks/test_serve.py``.
    """
    from repro.core.schema import LEFT
    from repro.datagen.generator import generate_dataset

    source = generate_dataset(
        300, duplicate_fraction=0.15, namesake_fraction=0.35, seed=13
    )
    events = list(arrival_stream(source).events)
    credit = [e for e in events if e.side == LEFT]
    billing = [e for e in events if e.side != LEFT]
    warm = {e.entity for e in credit if (e.entity % 100) < 20}
    stream = [e for e in credit if e.entity in warm] + billing

    spec = (
        builder(source)
        .serve(port=0, max_batch=32, max_delay_ms=20)
        .build()
    )
    thread, host, port = start_server(spec)
    try:
        client = ServeClient(host, port)
        try:
            # Bulk posts fill whole micro-batches (the steady-traffic
            # shape); each record still gets its own seq and result.
            for start in range(0, len(stream), 32):
                status, body, _ = client.request(
                    "POST",
                    "/ingest",
                    {
                        "records": [
                            event_record(event)
                            for event in stream[start : start + 32]
                        ]
                    },
                )
                assert status == 200
        finally:
            client.close()
        server_chases = thread.server.tenant.workspace.plan.stats.enforcements
        server_state = state(thread.server.tenant.matcher.store)
    finally:
        thread.stop()

    offline = builder(source).workspace()
    offline_matcher = offline.stream()
    offline_matcher.ingest_stream(stream)
    offline_chases = offline.plan.stats.enforcements
    # Fewer chases, identical answers.
    assert server_chases < offline_chases
    assert server_state == state(offline_matcher.store)

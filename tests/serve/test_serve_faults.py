"""Fault suite: backpressure sheds load exactly-once; crashes resume.

Two service guarantees under stress:

* **Backpressure**: past ``queue_limit`` pending events, ``/ingest``
  answers 429 with a ``Retry-After`` header — and the rejected event is
  *not* applied (no loss on accepted events, no double-apply on
  rejected-then-retried ones).  The test makes the saturation
  deterministic by holding the tenant's engine lock from outside, so
  the drain worker is pinned mid-batch while the queue fills.

* **Crash durability**: every acked ingest response means the batch was
  durably committed *before* the future resolved.  An abortive stop
  (``abort=True`` — the store closes without a further commit, queued
  events fail) therefore loses nothing acked; a fresh server over the
  same SQLite file resumes and the final clusters equal an offline
  replay of exactly the acked prefix plus the post-restart traffic.
"""

from __future__ import annotations

import threading
import time

from repro.datagen.streams import arrival_stream, duplicate_burst_stream

from serve_helpers import ServeClient, builder, dataset, event_record, start_server, state


def _post_in_thread(host, port, record):
    """POST one ingest from a dedicated thread; returns (thread, box)."""
    box = {}

    def worker():
        client = ServeClient(host, port)
        try:
            box["status"], box["body"], box["headers"] = client.request(
                "POST", "/ingest", record
            )
        finally:
            client.close()

    thread = threading.Thread(target=worker)
    thread.start()
    return thread, box


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


def test_saturated_queue_returns_429_without_loss_or_double_apply():
    events = list(arrival_stream(dataset(60, seed=7), seed=3).events)[:4]
    spec = (
        builder(dataset(60, seed=7))
        .serve(port=0, max_batch=1, max_delay_ms=0, queue_limit=2)
        .build()
    )
    thread, host, port = start_server(spec)
    try:
        tenant = thread.server.tenant
        # Open the store up front, then pin the engine lock so the
        # drain worker blocks mid-batch and the queue fills on cue.
        assert tenant.matcher is not None
        tenant._lock.acquire()
        try:
            # First event: pulled into a (max_batch=1) batch, stuck on
            # the lock.  Wait on the monotone taken counter — pending
            # == 0 is trivially true before the request even arrives,
            # which would let a later event reach the drain first.
            first_thread, first_box = _post_in_thread(
                host, port, event_record(events[0])
            )
            _wait_for(lambda: tenant.queue.taken == 1)

            # Two more fill the bounded queue to its limit of 2.
            waiting = [
                _post_in_thread(host, port, event_record(event))
                for event in events[1:3]
            ]
            _wait_for(lambda: tenant.queue.pending == 2)

            # The next submit must be shed synchronously: 429 comes
            # back immediately even though the worker is still pinned.
            shed_client = ServeClient(host, port)
            try:
                status, body, headers = shed_client.request(
                    "POST", "/ingest", event_record(events[3])
                )
            finally:
                shed_client.close()
            assert status == 429
            assert "retry-after" in headers
            assert int(headers["retry-after"]) >= 1
            assert body["retry_after"] == int(headers["retry-after"])
            assert body["queue_limit"] == 2
        finally:
            tenant._lock.release()

        # Everything accepted completes exactly once.
        first_thread.join()
        for waiter, _ in waiting:
            waiter.join()
        accepted = [(first_box, events[0])] + [
            (box, event)
            for (_, box), event in zip(waiting, events[1:3])
        ]
        assert all(box["status"] == 200 for box, _ in accepted)

        # The shed event was NOT applied; a retry lands it exactly once.
        retry_client = ServeClient(host, port)
        try:
            status, body, _ = retry_client.request(
                "POST", "/ingest", event_record(events[3])
            )
        finally:
            retry_client.close()
        assert status == 200
        accepted.append(({"status": status, "body": body}, events[3]))

        # seq order is the server's processing order (the two queued
        # events may drain in either order) — replay offline in it.
        numbered = sorted(
            (box["body"]["results"][0]["seq"], event)
            for box, event in accepted
        )
        assert [seq for seq, _ in numbered] == [0, 1, 2, 3]
        processed = [event for _, event in numbered]

        server_state = state(tenant.matcher.store)
    finally:
        thread.stop()

    # Exactly-once, bit for bit: the store equals an offline ingest of
    # the four events once each (a double-applied retry would differ).
    offline = builder(dataset(60, seed=7)).workspace().stream()
    offline.ingest_stream(processed)
    assert server_state == state(offline.store)


def test_bulk_request_is_shed_whole_never_half_applied():
    """A multi-record request that does not fit the queue's remaining
    headroom must 429 with *zero* of its records admitted — otherwise a
    client retry would double-apply the admitted prefix."""
    events = list(arrival_stream(dataset(60, seed=7), seed=3).events)[:6]
    spec = (
        builder(dataset(60, seed=7))
        .serve(port=0, max_batch=1, max_delay_ms=0, queue_limit=2)
        .build()
    )
    thread, host, port = start_server(spec)
    try:
        tenant = thread.server.tenant
        assert tenant.matcher is not None
        tenant._lock.acquire()
        try:
            first_thread, first_box = _post_in_thread(
                host, port, event_record(events[0])
            )
            # taken == 1: the drain holds exactly the first event
            # (pending == 0 would also be true before it ever arrived).
            _wait_for(lambda: tenant.queue.taken == 1)
            # One slot of two taken; a 1-record bulk still fits...
            waiting_thread, waiting_box = _post_in_thread(
                host,
                port,
                {"records": [event_record(events[1])]},
            )
            _wait_for(lambda: tenant.queue.pending == 1)
            # ...but a 2-record bulk against 1 free slot is shed whole.
            shed_client = ServeClient(host, port)
            try:
                status, body, headers = shed_client.request(
                    "POST",
                    "/ingest",
                    {"records": [event_record(e) for e in events[2:4]]},
                )
            finally:
                shed_client.close()
            assert status == 429
            assert "retry-after" in headers
            assert tenant.queue.pending == 1  # nothing admitted
        finally:
            tenant._lock.release()
        first_thread.join()
        waiting_thread.join()
        assert first_box["status"] == 200
        assert waiting_box["status"] == 200

        # The retry applies the shed pair exactly once.
        retry_client = ServeClient(host, port)
        try:
            status, body, _ = retry_client.request(
                "POST",
                "/ingest",
                {"records": [event_record(e) for e in events[2:4]]},
            )
        finally:
            retry_client.close()
        assert status == 200
        server_state = state(tenant.matcher.store)
    finally:
        thread.stop()

    offline = builder(dataset(60, seed=7)).workspace().stream()
    offline.ingest_stream(events[:4])
    assert server_state == state(offline.store)


def test_abortive_stop_fails_queued_ingests_with_503():
    events = list(arrival_stream(dataset(60, seed=7), seed=3).events)[:3]
    spec = (
        builder(dataset(60, seed=7))
        .serve(port=0, max_batch=1, max_delay_ms=0, queue_limit=8)
        .build()
    )
    thread, host, port = start_server(spec)
    stopped = False
    try:
        tenant = thread.server.tenant
        assert tenant.matcher is not None
        tenant._lock.acquire()
        try:
            in_flight_thread, in_flight_box = _post_in_thread(
                host, port, event_record(events[0])
            )
            # Wait for the drain to *take* the first event — not for
            # pending == 0, which also holds before it ever arrived.
            _wait_for(lambda: tenant.queue.taken == 1)
            queued = [
                _post_in_thread(host, port, event_record(event))
                for event in events[1:]
            ]
            _wait_for(lambda: tenant.queue.pending == 2)

            # Abort while two events sit in the queue.  stop() must run
            # from another thread: it awaits the drain task, which is
            # blocked on the lock we hold until the finally releases it.
            stopper = threading.Thread(
                target=thread.stop, kwargs={"abort": True}
            )
            stopper.start()
            stopped = True
        finally:
            tenant._lock.release()
        stopper.join()

        # The in-flight batch finished (its commit already ran); the
        # queued ones were failed with TenantClosed -> 503, not lost in
        # silence and never applied.
        in_flight_thread.join()
        assert in_flight_box["status"] == 200
        for waiter, box in queued:
            waiter.join()
            assert box["status"] == 503
    finally:
        if not stopped:
            thread.stop()


def test_kill_and_restart_resumes_to_same_clusters(tmp_path):
    events = list(duplicate_burst_stream(dataset(120), seed=5).events)
    half = len(events) // 2
    spec = (
        builder(dataset(120))
        .persistence("sqlite", str(tmp_path / "crash.db"))
        .serve(port=0, max_batch=4, max_delay_ms=10)
        .build()
    )

    def bulk_ingest(host, port, stream):
        client = ServeClient(host, port)
        seqs = []
        try:
            for start in range(0, len(stream), 8):
                status, body, _ = client.request(
                    "POST",
                    "/ingest",
                    {
                        "records": [
                            event_record(event)
                            for event in stream[start : start + 8]
                        ]
                    },
                )
                assert status == 200
                seqs.extend(result["seq"] for result in body["results"])
        finally:
            client.close()
        return seqs

    # First life: ingest the acked prefix, then die without the
    # graceful final commit (every acked batch already committed).
    thread, host, port = start_server(spec)
    try:
        seqs = bulk_ingest(host, port, events[:half])
        assert sorted(seqs) == list(range(half))
    finally:
        thread.stop(abort=True)

    # Second life: same database file, rest of the stream.
    thread, host, port = start_server(spec)
    try:
        seqs = bulk_ingest(host, port, events[half:])
        assert sorted(seqs) == list(range(len(events) - half))
        resumed_state = state(thread.server.tenant.matcher.store)
    finally:
        thread.stop()

    # The crash cost nothing: final clusters equal one uninterrupted
    # offline run over the full stream.
    offline = builder(dataset(120)).workspace().stream()
    offline.ingest_stream(events)
    assert resumed_state == state(offline.store)

"""Unit tests for the stdlib HTTP/1.1 framing layer.

Every malformed or oversized input must surface as :class:`BadRequest`
(the connection loop's clean 400), never as a stray exception — these
feed crafted byte streams straight into :func:`read_request` without a
socket in sight.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    BadRequest,
    Request,
    error_body,
    read_request,
    response_bytes,
)


def _read(raw: bytes, **kwargs):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


def test_parses_request_line_headers_query_and_body():
    payload = json.dumps({"side": "left"}).encode()
    raw = (
        b"POST /ingest?debug=1&empty= HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
        b"\r\n" + payload
    )
    request = _read(raw)
    assert request.method == "POST"
    assert request.path == "/ingest"
    assert request.query == {"debug": "1", "empty": ""}
    assert request.headers["content-type"] == "application/json"
    assert request.json() == {"side": "left"}
    assert request.keep_alive


def test_clean_eof_returns_none():
    assert _read(b"") is None


def test_connection_close_header():
    request = _read(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not request.keep_alive


def test_percent_encoded_path_is_decoded():
    request = _read(b"GET /query/1%2F2 HTTP/1.1\r\n\r\n")
    assert request.path == "/query/1/2"


@pytest.mark.parametrize(
    "raw, fragment",
    [
        (b"GET /\r\n\r\n", "malformed request line"),
        (b"GET / SPDY/3\r\n\r\n", "unsupported protocol"),
        (b"GET / HTTP/1.1", "truncated request line"),
        (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", "malformed header"),
        (b"GET / HTTP/1.1\r\nHost: x", "truncated headers"),
        (
            b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            "invalid Content-Length",
        ),
        (
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            "invalid Content-Length",
        ),
        (
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            "truncated body",
        ),
        (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "chunked requests are not supported",
        ),
    ],
)
def test_malformed_requests_are_bad_requests(raw, fragment):
    with pytest.raises(BadRequest, match=fragment):
        _read(raw)


def test_oversized_request_line_rejected():
    raw = b"GET /" + b"a" * (9 * 1024) + b" HTTP/1.1\r\n\r\n"
    with pytest.raises(BadRequest, match="request line too long"):
        _read(raw)


def test_too_many_headers_rejected():
    headers = b"".join(
        b"X-Header-%d: v\r\n" % index for index in range(101)
    )
    with pytest.raises(BadRequest, match="too many headers"):
        _read(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")


def test_body_over_limit_rejected_before_reading_it():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + b"x" * 1000
    with pytest.raises(BadRequest, match="exceeds"):
        _read(raw, max_body=100)


def test_json_of_empty_or_invalid_body_is_bad_request():
    with pytest.raises(BadRequest, match="expected a JSON body"):
        Request("POST", "/", {}, {}).json()
    with pytest.raises(BadRequest, match="invalid JSON body"):
        Request("POST", "/", {}, {}, body=b"{nope").json()


def test_response_bytes_frames_json_text_and_bytes():
    framed = response_bytes(200, {"ok": 1})
    head, _, payload = framed.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK\r\n")
    assert b"Content-Type: application/json" in head
    assert json.loads(payload) == {"ok": 1}

    text = response_bytes(503, "down", keep_alive=False)
    assert b"Content-Type: text/plain; charset=utf-8" in text
    assert b"Connection: close" in text
    assert text.endswith(b"down")

    raw = response_bytes(200, b"\x00\x01", content_type="application/octet-stream")
    assert raw.endswith(b"\x00\x01")
    assert response_bytes(200).endswith(b"\r\n\r\n")  # empty body

    with_extra = response_bytes(
        429, error_body("full", retry_after=2), extra_headers={"Retry-After": "2"}
    )
    assert b"Retry-After: 2" in with_extra
    assert b"HTTP/1.1 429 Too Many Requests" in with_extra

    unknown = response_bytes(418, None)
    assert unknown.startswith(b"HTTP/1.1 418 Unknown\r\n")


def test_error_body_merges_extras():
    assert error_body("nope", code=7) == {"error": "nope", "code": 7}

"""End-to-end integration tests crossing all subsystems.

The full workflow a downstream user runs: write MDs (text syntax), deduce
RCKs, generate candidates, match with three different matchers, and
evaluate against truth — plus the semantic round trip between deduction
(Σ ⊨m φ) and enforcement (every chase fixpoint satisfies φ).
"""

import pytest

from repro.core.closure import ClosureEngine, deduces
from repro.core.findrcks import find_rcks
from repro.core.parser import parse_mds
from repro.core.semantics import InstancePair, enforce, satisfies
from repro.datagen.generator import generate_dataset
from repro.datagen.mdgen import generate_workload
from repro.datagen.schemas import extended_mds
from repro.matching.comparison import union_of_rcks
from repro.matching.evaluate import evaluate_matches, evaluate_reduction
from repro.matching.fellegi_sunter import FellegiSunter
from repro.matching.pipeline import RCKMatcher
from repro.matching.rules import default_person_rules, rules_from_rcks
from repro.matching.sorted_neighborhood import SortedNeighborhood
from repro.matching.windowing import rck_sort_keys, window_pairs


class TestTextToKeysWorkflow:
    def test_parse_deduce_match(self, pair, target, fig1):
        """MDs written as text drive the whole Fig. 1 narrative."""
        text = """
        # Example 2.1
        credit[LN] = billing[LN] & credit[addr] = billing[post] & credit[FN] ~dl(0.8) billing[FN] -> credit[FN] <=> billing[FN] & credit[LN] <=> billing[LN] & credit[addr] <=> billing[post] & credit[tel] <=> billing[phn] & credit[gender] <=> billing[gender]
        credit[tel] = billing[phn] -> credit[addr] <=> billing[post]
        credit[email] = billing[email] -> credit[FN] <=> billing[FN] & credit[LN] <=> billing[LN]
        """
        sigma = parse_mds(text, pair)
        assert len(sigma) == 3
        keys = find_rcks(sigma, target, m=6)
        matcher = RCKMatcher(keys)
        _, credit, billing = fig1
        result = matcher.match(
            credit,
            billing,
            candidates=[(l, r) for l in range(2) for r in range(4)],
        )
        assert set(result.matches) == {(0, 0), (0, 1), (0, 2), (0, 3)}


class TestDeductionEnforcementRoundTrip:
    """If Σ ⊨m φ, then every chase fixpoint of Σ satisfies φ."""

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_on_random_workloads(self, seed):
        workload = generate_workload(md_count=8, target_length=3, seed=seed)
        pair, sigma = workload.pair, list(workload.sigma)
        engine = ClosureEngine(pair, sigma)

        # Candidate φs: each MD with its RHS replaced by a random target
        # pair, some deducible and some not.
        from repro.core.md import MatchingDependency

        candidates = []
        for dependency in sigma[:4]:
            for position in range(len(workload.target)):
                left, right = workload.target[position]
                candidates.append(
                    MatchingDependency(
                        pair, dependency.lhs, [(left, right)]
                    )
                )

        # Build a tiny instance where some tuple pairs satisfy LHS values.
        from repro.relations.relation import Relation

        left_rel = Relation(pair.left)
        right_rel = Relation(pair.right)
        for index in range(3):
            left_rel.insert(
                {name: f"v{index}" for name in pair.left.attribute_names}
            )
            right_rel.insert(
                {name: f"v{index}" for name in pair.right.attribute_names}
            )
        instance = InstancePair(pair, left_rel, right_rel)
        result = enforce(instance, sigma)
        assert result.stable

        for phi in candidates:
            if engine.deduces(phi):
                # Deduced MDs hold on (D', D') for every stable D'.
                assert satisfies(result.instance, result.instance, phi), (
                    f"deduced {phi} violated on a stable instance"
                )


class TestFullMatchingPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(400, seed=17)

    @pytest.fixture(scope="class")
    def rcks(self, dataset):
        return find_rcks(extended_mds(dataset.pair), dataset.target, m=5)

    @pytest.fixture(scope="class")
    def candidates(self, dataset, rcks):
        left_key, right_key = rck_sort_keys(rcks)
        return window_pairs(
            dataset.credit, dataset.billing, left_key, right_key, 10
        )

    def test_candidates_reduce_space(self, dataset, candidates):
        reduction = evaluate_reduction(
            candidates, dataset.true_matches, dataset.total_pairs
        )
        assert reduction.reduction_ratio > 0.9
        assert reduction.pairs_completeness > 0.5

    def test_three_matchers_agree_on_quality_ordering(
        self, dataset, rcks, candidates
    ):
        # RCK rules
        sn_rck = SortedNeighborhood(rules_from_rcks(rcks))
        rck_result = sn_rck.run_on_candidates(
            dataset.credit, dataset.billing, candidates
        )
        rck_quality = evaluate_matches(
            rck_result.matches, dataset.true_matches
        )

        # 25 hand rules
        sn_base = SortedNeighborhood(default_person_rules())
        base_result = sn_base.run_on_candidates(
            dataset.credit, dataset.billing, candidates
        )
        base_quality = evaluate_matches(
            base_result.matches, dataset.true_matches
        )

        # FS with the RCK-union vector
        fs = FellegiSunter(union_of_rcks(rcks))
        fs.fit(dataset.credit, dataset.billing, candidates, seed=0)
        fs_matches = fs.classify(dataset.credit, dataset.billing, candidates)
        fs_quality = evaluate_matches(fs_matches, dataset.true_matches)

        # Headline orderings of Section 6.
        assert rck_quality.precision >= base_quality.precision
        assert fs_quality.f1 > 0.7
        assert rck_quality.f1 > 0.8

    def test_deduced_keys_are_sound_on_clean_data(self, rcks):
        """On noise-free data RCK matching has perfect precision."""
        from repro.datagen.noise import NoiseModel

        clean = generate_dataset(
            300,
            seed=23,
            noise=NoiseModel(tuple_rate=0.0),
            household_fraction=0.2,
            namesake_fraction=0.1,
        )
        matcher = RCKMatcher(rcks)
        candidates = [
            (credit_tid, billing_tid)
            for credit_tid in clean.credit.tids()[:40]
            for billing_tid in clean.billing.tids()
        ]
        result = matcher.match(clean.credit, clean.billing, candidates)
        quality = evaluate_matches(result.matches, clean.true_matches)
        assert quality.precision == 1.0


class TestDeductionMonotonicity:
    def test_more_mds_never_lose_deductions(self, pair, sigma, target):
        """Σ ⊆ Σ' implies deductions of Σ are deductions of Σ'."""
        keys = find_rcks(sigma, target, m=6)
        richer = sigma + [
            parse_mds(
                "credit[SSN] = billing[c#] -> credit[gender] <=> billing[gender]",
                pair,
            )[0]
        ]
        engine = ClosureEngine(pair, richer)
        for key in keys:
            assert engine.deduces(key.to_md())

"""Shared fixtures: the paper's schemas, MDs, targets and instances."""

from __future__ import annotations

import pytest

from repro.core.schema import ComparableLists, RelationSchema, SchemaPair
from repro.datagen.generator import figure1_instances, generate_dataset
from repro.datagen.schemas import (
    credit_billing_pair,
    extended_mds,
    extended_pair,
    extended_target,
    paper_mds,
    paper_target,
)


@pytest.fixture
def pair() -> SchemaPair:
    """The Example 1.1 (credit, billing) schema pair."""
    return credit_billing_pair()


@pytest.fixture
def target(pair) -> ComparableLists:
    """The (Yc, Yb) card-holder lists of Example 1.1."""
    return paper_target(pair)


@pytest.fixture
def sigma(pair):
    """The MDs ϕ1, ϕ2, ϕ3 of Example 2.1."""
    return paper_mds(pair)


@pytest.fixture
def self_pair() -> SchemaPair:
    """The (R, R) pair of Example 2.3, schema R(A, B, C)."""
    schema = RelationSchema("R", ["A", "B", "C"])
    return SchemaPair(schema, schema)


@pytest.fixture
def fig1():
    """The exact Fig. 1 instances: (pair, credit, billing)."""
    return figure1_instances()


@pytest.fixture
def ext_pair() -> SchemaPair:
    """The Section 6.2 extended schema pair."""
    return extended_pair()


@pytest.fixture
def ext_target(ext_pair):
    """The 11-attribute identification lists of Section 6.2."""
    return extended_target(ext_pair)


@pytest.fixture
def ext_sigma(ext_pair):
    """The 7 card-holder MDs of Section 6.2."""
    return extended_mds(ext_pair)


@pytest.fixture(scope="session")
def small_dataset():
    """A small deterministic matching dataset shared across tests."""
    return generate_dataset(300, seed=42)

"""Observability through the façade: spans, stats, and worker merging.

The acceptance criteria for ``repro.obs`` live here: a traced
:class:`~repro.api.Workspace` match records the whole pipeline
(compile → blocking → chase rounds), a traced *parallel* match merges
every worker's span tree under the pool span (under both ``fork`` and
``spawn``), an untraced run records exactly nothing and decides exactly
the same matches, every serial fallback is named in the stats AND on the
trace, and ``MatchReport.stats`` keeps every pre-existing ``PlanStats``
key.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import fields

import pytest

from repro.api import Workspace
from repro.core.schema import LEFT, RIGHT
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import resolution_spec_document
from repro.obs import NULL_TRACER, read_trace, validate_trace
from repro.plan import parallel
from repro.plan.compile import PlanStats


def _document(dataset, workers=1, traced=True, **blocking):
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2, **blocking},
        execution={"mode": "enforce", "workers": workers},
    )
    if traced:
        document["observability"] = {"enabled": True}
    return document


def _all_spans(tracer):
    """Every recorded span, preorder across the root forest."""
    return [
        span for root in tracer.spans() for span, _ in root.walk()
    ]


def _named(tracer, name):
    return [span for span in _all_spans(tracer) if span.name == name]


class TestTracedMatch:
    def test_traced_match_covers_the_whole_pipeline(self):
        dataset = generate_dataset(60, seed=3)
        workspace = Workspace.from_dict(_document(dataset))
        report = workspace.match(dataset.credit, dataset.billing)
        assert report.matches  # a trivial run would prove nothing

        names = {span.name for span in _all_spans(workspace.tracer)}
        # Compile stage (one span tree per workspace lifetime)...
        assert {"compile", "parse-mds", "deduce-rcks",
                "build-blocking", "compile-plan"} <= names
        # ...and the enforcement stage, down to individual chase rounds.
        assert {"enforce", "blocking", "chase", "chase-round",
                "provenance"} <= names

        # Rounds nest under their chase, and their count agrees with the
        # span attribute the chase recorded.
        (chase,) = _named(workspace.tracer, "chase")
        rounds = [c for c in chase.children if c.name == "chase-round"]
        assert len(rounds) == chase.attrs["rounds"] > 0
        assert all(span.duration >= 0.0 for span in _all_spans(workspace.tracer))

        # The registry's view of the same run lands in the report.
        histograms = report.stats["histograms"]
        for name in ("chase.rounds", "chase.seconds", "match.seconds"):
            assert histograms[name]["count"] == 1

    def test_tracing_off_is_silent_and_equivalent(self):
        """The differential guarantee: observing a run never alters it."""
        dataset = generate_dataset(60, seed=11)
        untraced = Workspace.from_dict(_document(dataset, traced=False))
        traced = Workspace.from_dict(_document(dataset, traced=True))

        assert untraced.tracer is NULL_TRACER
        plain = untraced.match(dataset.credit, dataset.billing)
        observed = traced.match(dataset.credit, dataset.billing)

        assert untraced.tracer.event_count() == 0
        assert traced.tracer.event_count() > 0
        assert plain.matches == observed.matches
        assert plain.clusters == observed.clusters
        assert plain.provenance == observed.provenance
        # The observability section is excluded from the fingerprint.
        assert plain.fingerprint == observed.fingerprint


class TestWorkerSpanMerge:
    @pytest.fixture(autouse=True)
    def force_pool(self, monkeypatch):
        monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_worker_span_trees_merge_under_the_pool(self, method, monkeypatch):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"platform has no {method} start method")
        monkeypatch.setenv(parallel.START_METHOD_ENV, method)

        dataset = generate_dataset(120, seed=3)
        workspace = Workspace.from_dict(_document(dataset, workers=4))
        workspace.match(dataset.credit, dataset.billing)
        stats = workspace.plan.stats
        assert stats.parallel_chases == 1
        assert stats.serial_fallback_reason is None

        tracer = workspace.tracer
        (pool,) = _named(tracer, "pool")
        assert pool.attrs["start_method"] == method
        # One worker chase tree per bin, tagged with its worker index
        # and re-based into the parent's clock (inside the pool span).
        attached = [c for c in pool.children if "worker" in c.attrs]
        assert {span.attrs["worker"] for span in attached} == set(
            range(stats.workers_spawned)
        )
        for span in attached:
            assert span.name == "chase"
            assert span.start >= pool.start
            assert any(c.name == "chase-round" for c in span.children)

        # The surrounding structure is recorded too.
        (parallel_span,) = _named(tracer, "parallel-chase")
        assert "serial_fallback_reason" not in parallel_span.attrs
        assert parallel_span.attrs["shards"] == stats.shards
        assert _named(tracer, "shard-pairs")
        (merge,) = _named(tracer, "merge-shards")
        assert merge.attrs["classes"] >= 0


class TestSerialFallbackReasons:
    """Satellite (b): every fallback names its reason, nothing is silent."""

    def _reason_on_trace(self, workspace):
        (span,) = _named(workspace.tracer, "parallel-chase")
        return span.attrs["serial_fallback_reason"]

    def test_below_min_pairs(self):
        # The default threshold (64) exceeds this workload's candidates.
        dataset = generate_dataset(30, seed=3)
        workspace = Workspace.from_dict(_document(dataset, workers=4))
        report = workspace.match(dataset.credit, dataset.billing)
        reason = report.stats["serial_fallback_reason"]
        assert reason.startswith("below-min-pairs(")
        assert reason.endswith("<64)")
        assert workspace.plan.stats.parallel_chases == 0
        assert self._reason_on_trace(workspace) == reason

    def test_single_component(self, monkeypatch):
        # A one-block SN instance: every row shares the keyed value, so
        # overlapping windows genuinely chain all pairs into a single
        # component.  (Ordinary SN workloads now shard — the rank index
        # splits runs at block boundaries — so forcing this fallback
        # takes a deliberately degenerate instance.)
        monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)
        from repro.relations.relation import Relation

        document = {
            "version": 1,
            "schema": {
                "left": {"name": "L", "attributes": ["A", "B"]},
                "right": {"name": "R", "attributes": ["A", "B"]},
            },
            "target": {"left": ["B"], "right": ["B"]},
            "rules": {"mds": ["L[A] = R[A] -> L[B] <=> R[B]"]},
            "blocking": {
                "backend": "sorted-neighborhood",
                "window": 10,
                "key_pairs": [["A", "A"]],
                "encode": [],
            },
            "execution": {"mode": "enforce", "workers": 4},
            "observability": {"enabled": True},
        }
        workspace = Workspace.from_dict(document)
        left = Relation(workspace.plan.pair.left)
        right = Relation(workspace.plan.pair.right)
        for tid in range(30):
            left.insert({"A": "shared", "B": f"value-{tid}"})
            right.insert({"A": "shared", "B": None})
        report = workspace.match(left, right)
        assert report.stats["serial_fallback_reason"] == "single-component"
        assert self._reason_on_trace(workspace) == "single-component"

    def test_unnamed_resolver(self, monkeypatch):
        monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)
        dataset = generate_dataset(60, seed=3)
        workspace = Workspace.from_dict(_document(dataset, workers=4))
        plan = workspace.plan
        from repro.core.semantics import InstancePair

        plan.enforce(
            InstancePair(plan.pair, dataset.credit, dataset.billing),
            resolver=lambda values: values[0],  # not a named policy
            workers=4,
            spec_document=workspace.spec.to_dict(),
        )
        assert plan.stats.serial_fallback_reason == "unnamed-resolver"

    def test_no_spec_document(self, monkeypatch):
        monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)
        dataset = generate_dataset(60, seed=3)
        workspace = Workspace.from_dict(_document(dataset, workers=4))
        plan = workspace.plan
        from repro.core.semantics import InstancePair
        from repro.metrics.registry import default_registry

        # A plan on a custom registry cannot ship a spec to workers.
        plan.registry = default_registry()
        plan.enforce(
            InstancePair(plan.pair, dataset.credit, dataset.billing),
            workers=4,
        )
        assert plan.stats.serial_fallback_reason == "no-spec-document"

    def test_workers_at_most_one(self):
        dataset = generate_dataset(30, seed=3)
        workspace = Workspace.from_dict(_document(dataset, workers=1))
        from repro.core.semantics import InstancePair

        parallel.parallel_chase(
            workspace.plan,
            InstancePair(workspace.plan.pair, dataset.credit, dataset.billing),
            candidate_pairs=workspace.plan.candidates(
                dataset.credit, dataset.billing
            ),
            workers=1,
        )
        assert workspace.plan.stats.serial_fallback_reason == "workers<=1"


class TestStatsBackwardCompat:
    def test_every_planstats_key_survives(self):
        """Satellite (c): old consumers of ``report.stats`` keep working."""
        dataset = generate_dataset(60, seed=3)
        workspace = Workspace.from_dict(_document(dataset, traced=False))
        report = workspace.match(dataset.credit, dataset.billing)

        for spec in fields(PlanStats):
            assert spec.name in report.stats
        # The counters stay plain ints at the top level.
        assert report.stats["compiles"] == 1
        assert report.stats["enforcements"] == 1
        assert isinstance(report.stats["pairs_compared"], int)
        assert report.stats["serial_fallback_reason"] is None
        # The registry's richer sections ride along without colliding.
        assert isinstance(report.stats["gauges"], dict)
        assert report.stats["histograms"]["match.seconds"]["count"] == 1
        # And the rendering is JSON-clean end to end.
        import json

        json.dumps(report.to_dict())


class TestWriteTrace:
    def test_write_trace_to_explicit_path(self, tmp_path):
        dataset = generate_dataset(60, seed=3)
        workspace = Workspace.from_dict(_document(dataset))
        workspace.match(dataset.credit, dataset.billing)
        path = tmp_path / "trace.json"
        document = workspace.write_trace(path, command="test-run")
        assert validate_trace(document) == []
        reread = read_trace(path)
        assert validate_trace(reread) == []
        manifest = reread["manifest"]
        assert manifest["spec_fingerprint"] == workspace.fingerprint
        assert manifest["mode"] == "enforce"
        assert manifest["workers"] == 1
        assert manifest["policy"] == workspace.spec.policy
        assert manifest["command"] == "test-run"

    def test_spec_trace_path_is_the_default(self, tmp_path):
        dataset = generate_dataset(60, seed=3)
        document = _document(dataset)
        target = tmp_path / "spec-trace.jsonl"
        document["observability"] = {
            "enabled": True, "trace": str(target), "trace_format": "jsonl",
        }
        workspace = Workspace.from_dict(document)
        workspace.match(dataset.credit, dataset.billing)
        workspace.write_trace()
        assert validate_trace(read_trace(target)) == []

    def test_no_path_anywhere_is_an_error(self):
        dataset = generate_dataset(30, seed=3)
        workspace = Workspace.from_dict(_document(dataset))
        with pytest.raises(ValueError, match="no trace path"):
            workspace.write_trace()


class TestEngineStreamTracing:
    def test_ingest_spans_and_metrics(self):
        dataset = generate_dataset(40, seed=3)
        workspace = Workspace.from_dict(_document(dataset))
        matcher = workspace.stream()
        ingested = 0
        for side, relation in ((LEFT, dataset.credit), (RIGHT, dataset.billing)):
            for row in list(relation)[:10]:
                matcher.ingest(side, row.values())
                ingested += 1

        spans = _named(workspace.tracer, "ingest")
        assert len(spans) == ingested
        for span in spans:
            assert span.attrs["side"] in (LEFT, RIGHT)
            assert "tid" in span.attrs

        rendered = workspace.metrics.as_dict()
        assert rendered["counters"]["engine.ingests"] == ingested
        assert rendered["histograms"]["engine.ingest_seconds"]["count"] == ingested
        # Store growth gauges track the store itself (last write wins).
        assert rendered["gauges"]["engine.left_rows"] == len(matcher.store.left)
        assert rendered["gauges"]["engine.right_rows"] == len(matcher.store.right)
        assert rendered["gauges"]["engine.left_rows"] > 0

    def test_stream_shares_the_workspace_tracer(self):
        dataset = generate_dataset(30, seed=3)
        workspace = Workspace.from_dict(_document(dataset))
        matcher = workspace.stream()
        assert matcher.tracer is workspace.tracer
        assert matcher.metrics is workspace.metrics

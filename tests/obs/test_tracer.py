"""Tracer unit tests: nesting, the null tracer, (de)serialization, export."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Span,
    Tracer,
    read_trace,
    run_manifest,
    summarize_trace,
    trace_document,
    validate_trace,
    write_trace,
)
from repro.obs.trace import _NULL_SPAN


class TestSpanNesting:
    def test_roots_and_children(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                inner.add("work", 2)
            with tracer.span("sibling"):
                pass
        assert [span.name for span in tracer.spans()] == ["outer"]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert outer.children[0].attrs["work"] == 2
        assert tracer.event_count() == 3

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert inner.start >= outer.start

    def test_attrs_set_and_add(self):
        tracer = Tracer()
        with tracer.span("span", preset=7) as span:
            span.set("note", "value")
            span.add("counter")
            span.add("counter", 3)
        assert span.attrs == {"preset": 7, "note": "value", "counter": 4}

    def test_exception_unwinding_keeps_the_stack_sound(self):
        """Manually-entered child spans leaked by a raise are closed."""
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("leaked").__enter__()
                raise RuntimeError("boom")
        (outer,) = tracer.spans()
        assert [child.name for child in outer.children] == ["leaked"]
        # The tracer is reusable afterwards.
        with tracer.span("after"):
            pass
        assert [span.name for span in tracer.spans()] == ["outer", "after"]

    def test_walk_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.spans()
        assert [(span.name, depth) for span, depth in root.walk()] == [
            ("a", 0), ("b", 1), ("c", 2), ("d", 1)
        ]


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.add("counter")
            span.set("key", "value")
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.event_count() == 0
        assert not NULL_TRACER.enabled

    def test_shared_singleton_span(self):
        """Every call returns the one module-level span: no allocation."""
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NULL_TRACER.span("a") is _NULL_SPAN

    def test_attach_is_a_noop(self):
        NULL_TRACER.attach([{"name": "x"}], worker=0)
        assert NULL_TRACER.spans() == ()


class TestSerialization:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("root", pairs=4) as root:
            with tracer.span("child") as child:
                child.add("merges", 2)
        return root

    def test_round_trip(self):
        root = self._tree()
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"pairs": 4}
        assert rebuilt.start == root.start
        assert rebuilt.duration == root.duration
        assert [child.name for child in rebuilt.children] == ["child"]
        assert rebuilt.children[0].attrs == {"merges": 2}

    def test_to_dict_is_json_and_pickle_safe(self):
        import pickle

        document = self._tree().to_dict()
        assert json.loads(json.dumps(document)) == document
        assert pickle.loads(pickle.dumps(document)) == document

    def test_attach_rebases_and_tags(self):
        worker = Tracer()
        with worker.span("chase") as chase:
            with worker.span("chase-round"):
                pass
        parent = Tracer()
        with parent.span("pool") as pool:
            parent.attach(
                [span.to_dict() for span in worker.spans()],
                rebase_to=pool.start,
                worker=3,
            )
        (pool_span,) = parent.spans()
        (attached,) = pool_span.children
        assert attached.name == "chase"
        assert attached.attrs["worker"] == 3
        # The earliest attached start aligns with the pool span's start,
        # and the parent/child offset inside the worker tree is kept.
        assert attached.start == pool.start
        offset = attached.children[0].start - attached.start
        original_offset = chase.children[0].start - chase.start
        assert offset == pytest.approx(original_offset)


class TestExport:
    def _traced_run(self):
        tracer = Tracer()
        with tracer.span("enforce", candidates=8):
            with tracer.span("chase", rounds=2):
                pass
        worker = Tracer()
        with worker.span("chase"):
            pass
        with tracer.span("pool") as pool:
            tracer.attach(
                [span.to_dict() for span in worker.spans()],
                rebase_to=pool.start,
                worker=0,
            )
        return tracer

    def test_chrome_document_shape(self):
        tracer = self._traced_run()
        metrics = MetricsRegistry()
        metrics.observe("chase.seconds", 0.25)
        document = trace_document(
            tracer, manifest=run_manifest(spec_fingerprint="abc"), metrics=metrics
        )
        assert validate_trace(document) == []
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        names = {event["name"] for event in spans}
        assert {"enforce", "chase", "pool"} <= names
        # The worker-tagged span renders on its own thread row...
        worker_rows = {e["tid"] for e in spans if e["args"].get("worker") == 0}
        assert worker_rows == {1}
        # ...and that row is named for the viewer.
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("ph") == "M"
        }
        assert thread_names[0] == "main"
        assert thread_names[1] == "worker-0"

    @pytest.mark.parametrize("format", ["chrome", "jsonl"])
    def test_write_read_round_trip(self, tmp_path, format):
        tracer = self._traced_run()
        path = tmp_path / f"trace.{format}"
        written = write_trace(
            tracer,
            path,
            manifest=run_manifest(spec_fingerprint="abc"),
            format=format,
        )
        document = read_trace(path)
        assert validate_trace(document) == []
        assert document["manifest"]["spec_fingerprint"] == "abc"
        want = sorted(
            (e["name"], e["ts"])
            for e in written["traceEvents"]
            if e["ph"] == "X"
        )
        got = sorted(
            (e["name"], e["ts"])
            for e in document["traceEvents"]
            if e.get("ph") == "X"
        )
        assert got == want

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(Tracer(), tmp_path / "t", format="xml")

    def test_validate_flags_problems(self):
        assert validate_trace([]) != []
        assert "manifest" in ";".join(validate_trace({"traceEvents": []}))
        missing_fp = validate_trace(
            {"manifest": {}, "traceEvents": [{"name": "x"}]}
        )
        assert any("spec_fingerprint" in problem for problem in missing_fp)

    def test_summarize_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("chase-round"):
                pass
        metrics = MetricsRegistry()
        metrics.observe("chase.rounds", 3)
        document = trace_document(
            tracer, manifest=run_manifest(spec_fingerprint="abc"), metrics=metrics
        )
        text = summarize_trace(document)
        assert "spec_fingerprint=abc" in text
        row = next(line for line in text.splitlines() if "chase-round" in line)
        assert " 3 " in row
        assert "chase.rounds" in text

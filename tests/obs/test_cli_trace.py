"""CLI observability: ``--trace`` on match/ingest, ``repro trace``, warnings.

End-to-end through :func:`repro.cli.main`, the way a user runs it: a
traced ``repro match`` writes a Chrome-loadable trace file whose
manifest pins the spec fingerprint and command line, ``repro trace
validate``/``summarize`` accept it (and reject garbage with exit 2),
``engine ingest --trace`` records per-record ingest spans, and a chase
that hits its round budget warns loudly on stderr instead of silently
returning partial matches.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.experiments.harness import resolution_spec_document
from repro.obs import read_trace, validate_trace
from repro.relations.csvio import save_relation


@pytest.fixture
def matching_run(tmp_path):
    """A spec file plus left/right CSVs ready for ``repro match``."""
    dataset = generate_dataset(40, seed=3)
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2},
        execution={"mode": "enforce"},
    )
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(document))
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    save_relation(dataset.credit, left)
    save_relation(dataset.billing, right)
    return spec, left, right


def _span_names(document):
    return {
        event["name"]
        for event in document["traceEvents"]
        if isinstance(event, dict) and event.get("ph") == "X"
    }


class TestMatchTrace:
    def test_trace_file_is_chrome_loadable(self, matching_run, tmp_path, capsys):
        spec, left, right = matching_run
        trace = tmp_path / "trace.json"
        code = main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--trace", str(trace), "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)

        document = read_trace(trace)
        assert validate_trace(document) == []
        # The manifest identifies the run: fingerprint, command, argv.
        manifest = document["manifest"]
        assert manifest["spec_fingerprint"] == report["spec_fingerprint"]
        assert manifest["command"] == "match"
        assert str(left) in manifest["left"]
        assert "--trace" in manifest["argv"]
        # The span tree covers compile and enforcement.
        assert {"compile", "enforce", "blocking", "chase"} <= _span_names(
            document
        )

    def test_jsonl_format(self, matching_run, tmp_path):
        spec, left, right = matching_run
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--trace", str(trace),
             "--trace-format", "jsonl", "--json"]
        )
        assert code == 0
        # One JSON object per line, and read_trace rebuilds the document.
        for line in trace.read_text().splitlines():
            json.loads(line)
        assert validate_trace(read_trace(trace)) == []

    def test_no_trace_flag_writes_nothing(self, matching_run, tmp_path, capsys):
        spec, left, right = matching_run
        code = main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--json"]
        )
        assert code == 0
        capsys.readouterr()
        assert list(tmp_path.glob("*.json")) == [spec]

    def test_unwritable_trace_path_is_a_cli_error(
        self, matching_run, tmp_path, capsys
    ):
        spec, left, right = matching_run
        code = main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right),
             "--trace", str(tmp_path / "missing-dir" / "trace.json")]
        )
        assert code == 2
        assert "cannot write trace" in capsys.readouterr().err


class TestTraceSubcommands:
    def _traced(self, matching_run, tmp_path):
        spec, left, right = matching_run
        trace = tmp_path / "trace.json"
        assert main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--trace", str(trace), "--json"]
        ) == 0
        return trace

    def test_validate_accepts_a_real_trace(
        self, matching_run, tmp_path, capsys
    ):
        trace = self._traced(matching_run, tmp_path)
        capsys.readouterr()
        assert main(["trace", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")
        assert "span event(s)" in out

    def test_summarize_prints_the_span_table(
        self, matching_run, tmp_path, capsys
    ):
        trace = self._traced(matching_run, tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spec_fingerprint=" in out
        assert "chase" in out
        assert "chase.seconds" in out  # the metrics section rides along

    def test_validate_rejects_garbage_with_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace", "validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "problem(s)" in err

    def test_summarize_rejects_garbage_with_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "not a valid trace" in capsys.readouterr().err

    def test_missing_file_is_a_cli_error(self, tmp_path, capsys):
        assert main(["trace", "validate", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err


class TestRoundsExhaustedWarning:
    """Satellite (a): budget exhaustion is a visible warning, not a secret."""

    CHAIN = 4

    def _chain_run(self, tmp_path, max_rounds):
        """A dependency-chain ruleset that needs CHAIN+1 rounds to converge.

        Rule *i* repairs the attribute rule *i+1* compares, so a
        ``max_rounds`` below CHAIN+1 exhausts the budget mid-cascade
        (the same adversarial construction as
        ``tests/plan/test_rounds_exhausted.py``).
        """
        attributes = [f"A{index}" for index in range(self.CHAIN + 1)]
        document = {
            "version": 1,
            "schema": {
                "left": {"name": "R", "attributes": attributes},
                "right": {"name": "S", "attributes": attributes},
            },
            "target": {"left": ["A1"], "right": ["A1"]},
            "rules": {
                "mds": [
                    f"R[A{i}] = S[A{i}] -> R[A{i + 1}] <=> S[A{i + 1}]"
                    for i in range(self.CHAIN)
                ]
            },
            "execution": {"mode": "enforce", "max_rounds": max_rounds},
        }
        spec = tmp_path / "chain-spec.json"
        spec.write_text(json.dumps(document))
        left = tmp_path / "chain-left.csv"
        right = tmp_path / "chain-right.csv"
        left.write_text(
            ",".join(attributes) + "\n"
            + "\n".join(
                f"match-{copy},"
                + ",".join(
                    f"left-{copy}-{i}-long" for i in range(1, self.CHAIN + 1)
                )
                for copy in range(3)
            )
            + "\n"
        )
        right.write_text(
            ",".join(attributes) + "\n"
            + "\n".join(
                f"match-{copy}" + "," * self.CHAIN for copy in range(3)
            )
            + "\n"
        )
        return spec, left, right

    def test_exhausted_budget_warns_on_stderr(self, tmp_path, capsys):
        spec, left, right = self._chain_run(tmp_path, max_rounds=1)
        code = main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--json"]
        )
        assert code == 0  # partial matches still print; the warning rides
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["stats"]["rounds_exhausted"] > 0
        assert "warning: the chase hit its round budget" in captured.err
        assert "execution.max_rounds=1" in captured.err
        assert "raise execution.max_rounds" in captured.err
        # The rules in play are named, so the user can see the cascade.
        assert "md0" in captured.err

    def test_converged_run_does_not_warn(self, tmp_path, capsys):
        spec, left, right = self._chain_run(tmp_path, max_rounds=100)
        code = main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["stats"]["rounds_exhausted"] == 0
        assert "round budget" not in captured.err

    def test_exhaustion_lands_on_the_trace_too(self, tmp_path, capsys):
        spec, left, right = self._chain_run(tmp_path, max_rounds=1)
        trace = tmp_path / "exhausted.json"
        assert main(
            ["match", "--spec", str(spec), "--left", str(left),
             "--right", str(right), "--trace", str(trace), "--json"]
        ) == 0
        capsys.readouterr()
        document = read_trace(trace)
        exhausted = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X"
            and event.get("name") == "chase"
            and event["args"].get("rounds_exhausted")
        ]
        assert exhausted
        # The triggering rule set is recorded with the exhaustion mark.
        assert exhausted[0]["args"]["rule_set"]


class TestEngineIngestTrace:
    def test_ingest_trace_records_per_record_spans(
        self, matching_run, tmp_path, capsys
    ):
        spec, left, right = matching_run
        store = tmp_path / "store.json"
        trace = tmp_path / "ingest-trace.json"
        code = main(
            ["engine", "ingest", "--spec", str(spec), "--store", str(store),
             "--left", str(left), "--right", str(right),
             "--trace", str(trace), "--json"]
        )
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        document = read_trace(trace)
        assert validate_trace(document) == []
        manifest = document["manifest"]
        assert manifest["command"] == "engine ingest"
        assert manifest["ingested"] == stats["ingested"] > 0
        ingest_spans = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X" and event.get("name") == "ingest"
        ]
        assert len(ingest_spans) == stats["ingested"]
        # The engine's latency histogram made it into the trace document.
        assert (
            document["metrics"]["histograms"]["engine.ingest_seconds"]["count"]
            == stats["ingested"]
        )

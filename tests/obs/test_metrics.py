"""Metrics registry unit tests: percentile math, merge, rendering."""

from __future__ import annotations

import pytest

from repro.obs import Histogram, MetricsRegistry, percentile


class TestPercentile:
    def test_exact_on_0_to_100(self):
        """With values 0..100, pN is exactly N (rank lands on a value)."""
        values = list(range(101))
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 100.0) == 100.0

    def test_linear_interpolation_between_ranks(self):
        # rank = (q/100) * (n-1); p50 of [1, 2, 3, 4] sits at rank 1.5.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 25.0) == 1.75

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_single_value(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestHistogram:
    def test_summary_keys(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.5
        assert set(summary) == {
            "count", "min", "max", "mean", "p50", "p95", "p99"
        }

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.count("chases")
        registry.count("chases", 2)
        registry.gauge("rows", 10)
        registry.gauge("rows", 12)  # last write wins
        for value in range(101):
            registry.observe("seconds", float(value))
        rendered = registry.as_dict()
        assert rendered["counters"] == {"chases": 3}
        assert rendered["gauges"] == {"rows": 12}
        summary = rendered["histograms"]["seconds"]
        assert summary["count"] == 101
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0

    def test_merge_pools_everything(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.count("c", 1)
        two.count("c", 2)
        two.count("only-two")
        one.gauge("g", 1)
        two.gauge("g", 9)
        one.observe("h", 1.0)
        two.observe("h", 3.0)
        one.merge(two)
        rendered = one.as_dict()
        assert rendered["counters"] == {"c": 3, "only-two": 1}
        assert rendered["gauges"]["g"] == 9
        assert rendered["histograms"]["h"]["count"] == 2
        assert rendered["histograms"]["h"]["mean"] == 2.0

    def test_absorb_counters_routes_non_numeric_to_gauges(self):
        registry = MetricsRegistry()
        registry.absorb_counters(
            {"pairs_compared": 5, "serial_fallback_reason": "single-component"}
        )
        rendered = registry.as_dict()
        assert rendered["counters"]["pairs_compared"] == 5
        assert rendered["gauges"]["serial_fallback_reason"] == "single-component"

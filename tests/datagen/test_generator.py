"""Unit tests for the dataset generator and its ground truth."""

import pytest

from repro.datagen.generator import figure1_instances, generate_dataset
from repro.datagen.noise import NoiseModel


class TestShape:
    def test_billing_size_exact(self, small_dataset):
        assert len(small_dataset.billing) == 300

    def test_credit_one_tuple_per_holder(self, small_dataset):
        entities = set(small_dataset.credit_entity.values())
        assert len(small_dataset.credit) == len(entities)

    def test_duplicate_fraction(self, small_dataset):
        # 80 % duplicates: base count is 20 % of K.
        assert len(small_dataset.credit) == pytest.approx(60, abs=1)

    def test_schemas_match_pair(self, small_dataset):
        assert small_dataset.credit.schema == small_dataset.pair.left
        assert small_dataset.billing.schema == small_dataset.pair.right

    def test_size_validation(self):
        with pytest.raises(ValueError):
            generate_dataset(1)

    def test_duplicate_fraction_validation(self):
        with pytest.raises(ValueError):
            generate_dataset(100, duplicate_fraction=1.0)

    def test_fraction_sum_validation(self):
        with pytest.raises(ValueError):
            generate_dataset(
                100, household_fraction=0.6, namesake_fraction=0.5
            )


class TestTruth:
    def test_every_billing_tuple_has_a_match(self, small_dataset):
        matched_billing = {b for _, b in small_dataset.true_matches}
        assert matched_billing == set(small_dataset.billing.tids())

    def test_truth_consistent_with_entities(self, small_dataset):
        for credit_tid, billing_tid in small_dataset.true_matches:
            assert (
                small_dataset.credit_entity[credit_tid]
                == small_dataset.billing_entity[billing_tid]
            )

    def test_is_true_match_helper(self, small_dataset):
        some_pair = next(iter(small_dataset.true_matches))
        assert small_dataset.is_true_match(*some_pair)
        assert not small_dataset.is_true_match(-1, -1)

    def test_total_pairs(self, small_dataset):
        assert small_dataset.total_pairs == len(small_dataset.credit) * len(
            small_dataset.billing
        )


class TestDeterminism:
    def test_same_seed_same_data(self):
        first = generate_dataset(100, seed=5)
        second = generate_dataset(100, seed=5)
        assert first.true_matches == second.true_matches
        for tid in first.billing.tids():
            assert first.billing[tid].values() == second.billing[tid].values()

    def test_different_seed_different_data(self):
        first = generate_dataset(100, seed=5)
        second = generate_dataset(100, seed=6)
        assert any(
            first.billing[tid].values() != second.billing[tid].values()
            for tid in first.billing.tids()
        )


class TestNoiseApplication:
    def test_zero_noise_keeps_duplicates_clean(self):
        dataset = generate_dataset(
            100, noise=NoiseModel(tuple_rate=0.0), seed=1
        )
        # Every billing tuple of an entity agrees with its credit holder
        # on every identity attribute.
        for credit_tid, billing_tid in dataset.true_matches:
            credit_row = dataset.credit[credit_tid]
            billing_row = dataset.billing[billing_tid]
            for left_attr, right_attr in dataset.target:
                assert credit_row[left_attr] == billing_row[right_attr]

    def test_full_noise_damages_most_duplicates(self):
        clean = generate_dataset(200, noise=NoiseModel(tuple_rate=0.0), seed=2)
        noisy = generate_dataset(200, noise=NoiseModel(tuple_rate=1.0), seed=2)
        differing = 0
        for credit_tid, billing_tid in noisy.true_matches:
            credit_row = noisy.credit[credit_tid]
            billing_row = noisy.billing[billing_tid]
            if any(
                credit_row[left] != billing_row[right]
                for left, right in noisy.target
            ):
                differing += 1
        assert differing > 0.5 * len(noisy.true_matches) - len(noisy.credit)


class TestHouseholdsAndNamesakes:
    def test_households_share_surname_and_address(self):
        dataset = generate_dataset(
            300, seed=9, household_fraction=0.5, namesake_fraction=0.0
        )
        rows = dataset.credit.rows()
        shared = 0
        for i, first in enumerate(rows):
            for second in rows[i + 1:]:
                if (
                    first["LN"] == second["LN"]
                    and first["street"] == second["street"]
                    and first["zip"] == second["zip"]
                ):
                    shared += 1
                    # distinct people: own card and email
                    assert first["c#"] != second["c#"]
                    assert first["email"] != second["email"]
        assert shared > 0

    def test_namesakes_exist(self):
        dataset = generate_dataset(
            300, seed=9, household_fraction=0.0, namesake_fraction=0.5
        )
        rows = dataset.credit.rows()
        names = {}
        namesakes = 0
        for row in rows:
            key = (row["FN"], row["LN"])
            namesakes += names.get(key, 0)
            names[key] = names.get(key, 0) + 1
        assert namesakes > 0

    def test_shared_cards_when_households_present(self):
        dataset = generate_dataset(
            400,
            seed=11,
            household_fraction=0.5,
            shared_card_probability=1.0,
        )
        # Some billing tuple must carry a c# that belongs to a different
        # entity's credit tuple.
        card_owner = {
            dataset.credit[tid]["c#"]: entity
            for tid, entity in dataset.credit_entity.items()
        }
        crossed = sum(
            1
            for tid, entity in dataset.billing_entity.items()
            if card_owner.get(dataset.billing[tid]["c#"], entity) != entity
        )
        assert crossed > 0


class TestFigure1:
    def test_tuple_values(self):
        pair, credit, billing = figure1_instances()
        assert credit[0]["FN"] == "Mark"
        assert billing[0]["FN"] == "Marx"
        assert billing[2]["LN"] == "Clivord"
        assert billing[1]["post"] == "NJ"
        assert billing[0]["gender"] is None

    def test_sizes(self):
        _, credit, billing = figure1_instances()
        assert len(credit) == 2
        assert len(billing) == 4

"""Streaming workload scenarios over generated datasets."""

from __future__ import annotations

import pytest

from repro.core.schema import LEFT, RIGHT
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)

ALL_SCENARIOS = [arrival_stream, duplicate_burst_stream, late_duplicate_stream]


@pytest.mark.parametrize("make_stream", ALL_SCENARIOS)
def test_events_cover_dataset_exactly(small_dataset, make_stream):
    """Every record appears exactly once, with its dataset tuple id."""
    workload = make_stream(small_dataset, seed=3)
    left_tids = [e.tid for e in workload.events if e.side == LEFT]
    right_tids = [e.tid for e in workload.events if e.side == RIGHT]
    assert sorted(left_tids) == sorted(small_dataset.credit.tids())
    assert sorted(right_tids) == sorted(small_dataset.billing.tids())
    assert len(workload) == len(left_tids) + len(right_tids)
    assert workload.counts() == (len(left_tids), len(right_tids))
    assert workload.true_matches == small_dataset.true_matches


@pytest.mark.parametrize("make_stream", ALL_SCENARIOS)
def test_events_carry_values_and_truth(small_dataset, make_stream):
    workload = make_stream(small_dataset, seed=3)
    event = workload.events[0]
    relation = (
        small_dataset.credit if event.side == LEFT else small_dataset.billing
    )
    entity = (
        small_dataset.credit_entity
        if event.side == LEFT
        else small_dataset.billing_entity
    )
    assert event.values == relation[event.tid].values()
    assert event.entity == entity[event.tid]


@pytest.mark.parametrize("make_stream", ALL_SCENARIOS)
def test_deterministic_given_seed(small_dataset, make_stream):
    a = make_stream(small_dataset, seed=9)
    b = make_stream(small_dataset, seed=9)
    c = make_stream(small_dataset, seed=10)
    assert a.events == b.events
    assert a.events != c.events


def test_duplicate_bursts_are_contiguous(small_dataset):
    """Within a burst every record belongs to one entity."""
    workload = duplicate_burst_stream(small_dataset, seed=4)
    entities_in_order = [event.entity for event in workload.events]
    # Once an entity's burst ends, that entity never reappears.
    seen = set()
    previous = None
    for entity in entities_in_order:
        if entity != previous:
            assert entity not in seen
            seen.add(entity)
            previous = entity


def test_late_duplicates_arrive_after_first_sightings(small_dataset):
    workload = late_duplicate_stream(small_dataset, seed=4)
    first_seen = {}
    for position, event in enumerate(workload.events):
        first_seen.setdefault(event.entity, position)
    head_len = len(small_dataset.credit) + len(
        {e for e in small_dataset.billing_entity.values()}
    )
    # Every entity is first seen within the head of the stream.
    assert all(position < head_len for position in first_seen.values())
    # The tail is pure duplicates (entities already seen).
    tail = workload.events[head_len:]
    assert all(first_seen[event.entity] < head_len for event in tail)

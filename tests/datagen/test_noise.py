"""Unit tests for the noise model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.noise import (
    DEFAULT_MIX,
    NoiseModel,
    abbreviate,
    double_typo,
    drop_tokens,
    harsh_noise,
    light_noise,
    null_out,
    scramble,
    typo,
)

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=15,
)


class TestOperators:
    @given(word=_words, seed=st.integers(0, 1000))
    @settings(max_examples=100)
    def test_typo_changes_value(self, word, seed):
        rng = random.Random(seed)
        assert typo(rng, word) != word or len(word) == 0

    @given(word=_words, seed=st.integers(0, 100))
    @settings(max_examples=50)
    def test_typo_single_edit_distance(self, word, seed):
        from repro.metrics.damerau_levenshtein import (
            damerau_levenshtein_distance,
        )

        rng = random.Random(seed)
        damaged = typo(rng, word)
        assert damerau_levenshtein_distance(word, damaged) <= 1

    def test_typo_on_empty(self):
        assert typo(random.Random(0), "") != ""

    @given(word=_words, seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_double_typo_bounded_edits(self, word, seed):
        from repro.metrics.damerau_levenshtein import (
            damerau_levenshtein_distance,
        )

        rng = random.Random(seed)
        # Two single-character operations; the OSA variant may count a
        # transposition followed by an overlapping edit as 3.
        assert damerau_levenshtein_distance(word, double_typo(rng, word)) <= 3

    def test_abbreviate_street(self):
        assert abbreviate(random.Random(0), "10 Oak Street") == "10 Oak St"

    def test_abbreviate_single_word_to_initial(self):
        assert abbreviate(random.Random(0), "Mark") == "M."

    def test_drop_tokens_keeps_suffix(self):
        rng = random.Random(3)
        result = drop_tokens(rng, "10 Oak Street, MH, NJ 07974")
        assert result
        tokens = "10 Oak Street, MH, NJ 07974".replace(",", " ").split()
        assert result.split() == tokens[-len(result.split()):]

    def test_null_out(self):
        assert null_out(random.Random(0), "anything") is None

    def test_scramble_changes_completely(self):
        result = scramble(random.Random(0), "Clifford")
        assert result != "Clifford"
        assert 3 <= len(result) <= 12


class TestNoiseModel:
    def test_default_mixture_installed(self):
        assert NoiseModel().mixture == DEFAULT_MIX

    def test_invalid_tuple_rate(self):
        with pytest.raises(ValueError):
            NoiseModel(tuple_rate=1.5)

    def test_empty_damage_counts_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(damage_counts=())

    def test_negative_damage_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(damage_counts=((-1, 1.0),))

    def test_tuple_rate_statistics(self):
        model = NoiseModel(tuple_rate=0.8)
        rng = random.Random(0)
        noisy = sum(model.is_noisy_tuple(rng) for _ in range(10_000))
        assert 0.77 < noisy / 10_000 < 0.83

    def test_damage_count_bounded_by_attributes(self):
        model = NoiseModel(damage_counts=((9, 1.0),))
        assert model.draw_damage_count(random.Random(0), 4) == 4

    def test_damage_count_distribution(self):
        model = NoiseModel(damage_counts=((1, 0.5), (2, 0.5)))
        rng = random.Random(1)
        draws = [model.draw_damage_count(rng, 11) for _ in range(5000)]
        assert set(draws) == {1, 2}
        assert 0.45 < draws.count(1) / 5000 < 0.55

    def test_apply_operator_uses_mixture(self):
        model = NoiseModel(mixture=((null_out, 1.0),))
        assert model.apply_operator(random.Random(0), "x") is None

    def test_light_and_harsh_presets(self):
        assert light_noise().tuple_rate == 0.8
        assert harsh_noise().tuple_rate == 1.0
        assert harsh_noise().draw_damage_count(random.Random(0), 11) == 9

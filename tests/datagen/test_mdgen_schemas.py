"""Tests for the random MD workload generator and the paper schemas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import ClosureEngine
from repro.datagen.mdgen import generate_workload, synthetic_pair
from repro.datagen.schemas import (
    BILLING_EXTENDED_ATTRIBUTES,
    CREDIT_EXTENDED_ATTRIBUTES,
    credit_billing_pair,
    extended_mds,
    extended_pair,
    extended_target,
    paper_mds,
    paper_target,
)


class TestSyntheticPair:
    def test_arity(self):
        pair = synthetic_pair(5)
        assert pair.left.arity == 5
        assert pair.right.arity == 5

    def test_minimum_arity(self):
        with pytest.raises(ValueError):
            synthetic_pair(1)


class TestGenerateWorkload:
    def test_exact_md_count(self):
        workload = generate_workload(md_count=40, target_length=5, seed=3)
        assert len(workload.sigma) == 40

    def test_target_length(self):
        workload = generate_workload(md_count=10, target_length=7, seed=3)
        assert len(workload.target) == 7

    def test_no_duplicate_mds(self):
        workload = generate_workload(md_count=60, target_length=5, seed=4)
        keys = {
            (frozenset(md.lhs), frozenset(md.rhs)) for md in workload.sigma
        }
        assert len(keys) == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_workload(md_count=0, target_length=3)
        with pytest.raises(ValueError):
            generate_workload(md_count=5, target_length=0)
        with pytest.raises(ValueError):
            generate_workload(md_count=5, target_length=6, arity=3)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, seed):
        first = generate_workload(md_count=15, target_length=4, seed=seed)
        second = generate_workload(md_count=15, target_length=4, seed=seed)
        assert list(first.sigma) == list(second.sigma)

    def test_workload_usable_by_engine(self):
        workload = generate_workload(md_count=30, target_length=5, seed=5)
        engine = ClosureEngine(workload.pair, list(workload.sigma))
        assert engine.deduces(list(workload.sigma)[0])


class TestPaperSchemas:
    def test_example_schema_attributes(self):
        pair = credit_billing_pair()
        assert pair.left.arity == 9
        assert pair.right.arity == 9
        assert "SSN" in pair.left
        assert "item" in pair.right

    def test_example_target_comparable(self):
        pair = credit_billing_pair()
        target = paper_target(pair)
        assert len(target) == 5

    def test_paper_mds_shapes(self):
        pair = credit_billing_pair()
        phi1, phi2, phi3 = paper_mds(pair)
        assert len(phi1.lhs) == 3 and len(phi1.rhs) == 5
        assert len(phi2.lhs) == 1 and len(phi2.rhs) == 1
        assert len(phi3.lhs) == 1 and len(phi3.rhs) == 2

    def test_extended_arities_match_section_62(self):
        # "which have 13 and 21 attributes, respectively"
        assert len(CREDIT_EXTENDED_ATTRIBUTES) == 13
        assert len(BILLING_EXTENDED_ATTRIBUTES) == 21
        pair = extended_pair()
        assert pair.left.arity == 13
        assert pair.right.arity == 21

    def test_extended_target_has_11_attributes(self):
        pair = extended_pair()
        assert len(extended_target(pair)) == 11

    def test_extended_target_excludes_card_number(self):
        pair = extended_pair()
        target = extended_target(pair)
        assert ("c#", "c#") not in target.attribute_pairs()

    def test_seven_extended_mds(self):
        pair = extended_pair()
        assert len(extended_mds(pair)) == 7

    def test_extended_mds_validate(self):
        pair = extended_pair()
        for dependency in extended_mds(pair):
            assert dependency.size >= 2

    def test_extended_mds_yield_multiple_rcks(self):
        from repro.core.findrcks import find_rcks

        pair = extended_pair()
        keys = find_rcks(extended_mds(pair), extended_target(pair), m=10)
        assert len(keys) >= 4

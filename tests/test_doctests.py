"""Run the doctests embedded in the library's docstrings.

Documentation examples must stay executable; this collects every module
with doctests and fails on any drift between docs and behaviour.

Modules are resolved by name through importlib because several package
``__init__`` files re-export *functions* with the same name as their
defining submodule (``repro.core.md.md``, ``repro.metrics.soundex.soundex``)
— plain attribute access would hand doctest a function, not the module.
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.core.closure",
    "repro.core.findrcks",
    "repro.core.md",
    "repro.core.parser",
    "repro.core.quality",
    "repro.core.rck",
    "repro.core.schema",
    "repro.core.similarity",
    "repro.datagen.generator",
    "repro.datagen.mdgen",
    "repro.matching.comparison",
    "repro.matching.em",
    "repro.matching.evaluate",
    "repro.metrics.damerau_levenshtein",
    "repro.metrics.jaccard",
    "repro.metrics.jaro",
    "repro.metrics.levenshtein",
    "repro.metrics.qgrams",
    "repro.metrics.registry",
    "repro.metrics.soundex",
    "repro.metrics.synonyms",
    "repro.relations.index",
    "repro.relations.relation",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )

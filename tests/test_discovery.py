"""Tests for MD discovery from sample data."""

import pytest

from repro.core.findrcks import find_rcks
from repro.datagen.generator import generate_dataset
from repro.discovery import (
    DiscoveryConfig,
    discover_mds,
    random_labelled_pairs,
    sample_labelled_pairs,
)
from repro.matching.evaluate import evaluate_matches
from repro.matching.pipeline import RCKMatcher
from repro.matching.windowing import attribute_key, window_pairs


@pytest.fixture(scope="module")
def training():
    """A labelled sample from a generated dataset."""
    dataset = generate_dataset(600, seed=31)
    left_key = attribute_key(["zip", "LN"])
    right_key = attribute_key(["zip", "LN"])
    candidates = window_pairs(
        dataset.credit, dataset.billing, left_key, right_key, 10
    )
    sample = sample_labelled_pairs(
        candidates, dataset.true_matches, limit=4000, seed=0
    )
    # Unbiased negatives so mined rules must discriminate globally.
    sample += random_labelled_pairs(
        dataset.credit, dataset.billing, dataset.true_matches, 4000, seed=1
    )
    return dataset, sample


class TestValidation:
    def test_config_bounds(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(min_confidence=0.0)
        with pytest.raises(ValueError):
            DiscoveryConfig(min_support=0)
        with pytest.raises(ValueError):
            DiscoveryConfig(max_lhs=0)
        with pytest.raises(ValueError):
            DiscoveryConfig(operators=())

    def test_empty_sample_rejected(self, training):
        dataset, _ = training
        with pytest.raises(ValueError, match="empty"):
            discover_mds(
                dataset.credit, dataset.billing, [], dataset.target
            )

    def test_no_positives_rejected(self, training):
        dataset, sample = training
        negatives = [(l, r, False) for l, r, _ in sample[:50]]
        with pytest.raises(ValueError, match="no positive"):
            discover_mds(
                dataset.credit, dataset.billing, negatives, dataset.target
            )


class TestMining:
    @pytest.fixture(scope="class")
    def mined(self, training):
        dataset, sample = training
        return discover_mds(
            dataset.credit,
            dataset.billing,
            sample,
            dataset.target,
            DiscoveryConfig(min_confidence=0.95, min_support=10, max_lhs=2),
        )

    def test_finds_rules(self, mined):
        assert len(mined) >= 3

    def test_confidence_respected(self, mined):
        assert all(rule.confidence >= 0.95 for rule in mined)

    def test_support_respected(self, mined):
        assert all(rule.support >= 10 for rule in mined)

    def test_minimality_no_lhs_contains_another(self, mined):
        lhs_sets = [frozenset(rule.dependency.lhs) for rule in mined]
        for i, first in enumerate(lhs_sets):
            for j, second in enumerate(lhs_sets):
                if i != j:
                    assert not first < second

    def test_sorted_by_confidence(self, mined):
        confidences = [rule.confidence for rule in mined]
        assert confidences == sorted(confidences, reverse=True)

    def test_discovers_phone_or_email_keys(self, mined):
        """The generator's semantics: tel/phn and email are near-keys."""
        mined_lhs = {
            frozenset(atom.attribute_pair for atom in rule.dependency.lhs)
            for rule in mined
        }
        expected_any = [
            frozenset({("tel", "phn")}),
            frozenset({("email", "email")}),
            frozenset({("tel", "phn"), ("email", "email")}),
        ]
        assert any(candidate in mined_lhs for candidate in expected_any)

    def test_str_includes_stats(self, mined):
        assert "confidence=" in str(mined[0])


class TestMinedToMatching:
    """The Section 7 pipeline: discover MDs → deduce RCKs → match."""

    def test_mined_mds_drive_matching(self, training):
        dataset, sample = training
        mined = discover_mds(
            dataset.credit,
            dataset.billing,
            sample,
            dataset.target,
            DiscoveryConfig(min_confidence=0.97, min_support=10, max_lhs=2),
        )
        assert mined
        sigma = [rule.dependency for rule in mined]
        rcks = find_rcks(sigma, dataset.target, m=5)
        # Evaluate on a *fresh* dataset (same distribution, new seed).
        fresh = generate_dataset(600, seed=77)
        matcher = RCKMatcher(rcks)
        result = matcher.match(fresh.credit, fresh.billing)
        quality = evaluate_matches(result.matches, fresh.true_matches)
        assert quality.precision > 0.9
        assert quality.recall > 0.5


class TestSampling:
    def test_limit_respected(self):
        pairs = [(i, i) for i in range(100)]
        sample = sample_labelled_pairs(pairs, frozenset(), limit=10, seed=0)
        assert len(sample) == 10

    def test_labels_against_truth(self):
        truth = frozenset({(0, 0)})
        sample = sample_labelled_pairs([(0, 0), (1, 1)], truth, seed=0)
        labels = {(l, r): m for l, r, m in sample}
        assert labels[(0, 0)] is True
        assert labels[(1, 1)] is False

"""Unit tests for comparison vectors / specs."""

import pytest

from repro.core.rck import RelativeKey
from repro.matching.comparison import (
    ComparisonSpec,
    equality_spec,
    spec_from_rck,
    union_of_rcks,
)
from repro.metrics.registry import default_registry


class CountingRegistry:
    """Wraps a registry, counting ``resolve`` calls."""

    def __init__(self):
        self._inner = default_registry()
        self.resolve_calls = 0

    def resolve(self, operator_name):
        self.resolve_calls += 1
        return self._inner.resolve(operator_name)


class TestComparisonSpec:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ComparisonSpec(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ComparisonSpec((("a", "a", "="), ("a", "a", "=")))

    def test_compare_vector(self, fig1):
        _, credit, billing = fig1
        spec = ComparisonSpec(
            (("LN", "LN", "="), ("FN", "FN", "dl(0.8)"), ("email", "email", "="))
        )
        vector = spec.compare(credit[0], billing[0])  # t1 vs t3
        assert vector == (True, True, False)

    def test_agrees_on_all_short_circuit(self, fig1):
        _, credit, billing = fig1
        spec = ComparisonSpec((("email", "email", "="), ("tel", "phn", "=")))
        assert not spec.agrees_on_all(credit[0], billing[0])  # t3: email "mc"
        assert spec.agrees_on_all(credit[0], billing[3])  # t6: both agree

    def test_attribute_pairs(self):
        spec = ComparisonSpec((("tel", "phn", "="),))
        assert spec.attribute_pairs() == (("tel", "phn"),)

    def test_metrics_resolved_once_at_construction(self, fig1):
        """Regression: evaluation must never re-resolve operator names.

        The spec resolves its predicates exactly once per feature when
        built; any number of ``compare``/``agrees_on_all`` calls keeps the
        lookup count flat.
        """
        _, credit, billing = fig1
        registry = CountingRegistry()
        spec = ComparisonSpec(
            (
                ("LN", "LN", "="),
                ("FN", "FN", "dl(0.8)"),
                ("email", "email", "="),
            ),
            registry=registry,
        )
        assert registry.resolve_calls == 3
        for _ in range(10):
            spec.compare(credit[0], billing[0])
            spec.agrees_on_all(credit[0], billing[0])
        assert registry.resolve_calls == 3

    def test_explicit_foreign_registry_still_honored(self, fig1):
        """Passing a different registry at call time resolves through it."""
        _, credit, billing = fig1
        spec = ComparisonSpec((("LN", "LN", "="),))
        other = CountingRegistry()
        assert spec.agrees_on_all(credit[0], billing[0], other)
        assert other.resolve_calls == 1

    def test_unknown_operator_deferred_to_call_time(self, fig1):
        """An operator the bound registry lacks must not break construction.

        Custom-registry metrics are supplied at evaluation time
        (Fellegi–Sunter, RuleSet); the spec resolves them lazily through
        whichever registry the call provides.
        """
        _, credit, billing = fig1
        spec = ComparisonSpec((("FN", "FN", "nope(0.5)"),))
        with pytest.raises(KeyError, match="unknown metric"):
            spec.compare(credit[0], billing[0])

        class NopeRegistry:
            def resolve(self, operator_name):
                return lambda left, right: True

        assert spec.agrees_on_all(credit[0], billing[0], NopeRegistry())


class TestSpecBuilders:
    def test_spec_from_rck(self, target):
        key = RelativeKey.from_triples(
            target, [("email", "email", "="), ("tel", "phn", "=")]
        )
        spec = spec_from_rck(key)
        assert spec.features == (
            ("email", "email", "="),
            ("tel", "phn", "="),
        )

    def test_union_dedups_by_pair_prefers_similarity(self, target):
        first = RelativeKey.from_triples(
            target, [("FN", "FN", "="), ("tel", "phn", "=")]
        )
        second = RelativeKey.from_triples(
            target, [("FN", "FN", "dl(0.8)"), ("email", "email", "=")]
        )
        spec = union_of_rcks([first, second])
        by_pair = {
            (left, right): op for left, right, op in spec.features
        }
        assert by_pair[("FN", "FN")] == "dl(0.8)"  # similarity wins
        assert len(spec) == 3

    def test_union_preserves_first_key_order(self, target):
        first = RelativeKey.from_triples(target, [("tel", "phn", "=")])
        second = RelativeKey.from_triples(target, [("email", "email", "=")])
        spec = union_of_rcks([first, second])
        assert spec.features[0][0] == "tel"

    def test_union_requires_keys(self):
        with pytest.raises(ValueError):
            union_of_rcks([])

    def test_equality_spec(self):
        spec = equality_spec([("FN", "FN"), ("LN", "LN")])
        assert all(op == "=" for _, _, op in spec.features)
        assert len(spec) == 2

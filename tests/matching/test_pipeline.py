"""Tests for the end-to-end matching pipelines."""

import pytest

from repro.matching.evaluate import evaluate_matches
from repro.matching.pipeline import EnforcementMatcher, RCKMatcher


class TestRCKMatcher:
    def test_requires_rcks(self):
        with pytest.raises(ValueError):
            RCKMatcher([])

    def test_from_mds_builds_keys(self, ext_sigma, ext_target):
        matcher = RCKMatcher.from_mds(ext_sigma, ext_target, top_k=5)
        assert 1 <= len(matcher.rcks) <= 5

    def test_match_on_generated_data(self, small_dataset, ext_sigma):
        matcher = RCKMatcher.from_mds(ext_sigma, small_dataset.target, top_k=5)
        result = matcher.match(small_dataset.credit, small_dataset.billing)
        quality = evaluate_matches(result.matches, small_dataset.true_matches)
        assert quality.precision > 0.9
        assert quality.recall > 0.5
        assert set(result.matches) <= set(result.candidates)

    def test_explicit_candidates_respected(self, small_dataset, ext_sigma):
        matcher = RCKMatcher.from_mds(ext_sigma, small_dataset.target, top_k=5)
        result = matcher.match(
            small_dataset.credit, small_dataset.billing, candidates=[]
        )
        assert result.matches == ()


class TestEnforcementMatcher:
    def test_requires_mds(self, ext_target):
        with pytest.raises(ValueError):
            EnforcementMatcher([], ext_target)

    def test_fig1_matches_via_enforcement(self, fig1, sigma, target):
        pair, credit, billing = fig1
        matcher = EnforcementMatcher(sigma, target)
        all_pairs = [(l, r) for l in range(2) for r in range(4)]
        result = matcher.match(credit, billing, candidates=all_pairs)
        # Example 1.1: t1 matches all of t3–t6; t2 matches nothing.
        assert set(result.matches) == {(0, 0), (0, 1), (0, 2), (0, 3)}

    def test_enforcement_beats_direct_rules_on_fig1(self, fig1, sigma, target):
        """Enforcement finds matches single-rule application cannot.

        With only ϕ1 (the given matching key) as a *direct* rule, t1–t4
        is unmatchable; enforcement of Σc = {ϕ1, ϕ2, ϕ3} first equalizes
        addresses/names through ϕ2/ϕ3 and then fires ϕ1.
        """
        pair, credit, billing = fig1
        from repro.matching.comparison import ComparisonSpec

        phi1_as_rule = ComparisonSpec(
            (
                ("LN", "LN", "="),
                ("addr", "post", "="),
                ("FN", "FN", "dl(0.8)"),
            )
        )
        assert not phi1_as_rule.agrees_on_all(credit[0], billing[1])

        matcher = EnforcementMatcher(sigma, target)
        result = matcher.match(
            credit, billing, candidates=[(0, 1)]
        )
        assert (0, 1) in result.matches

    def test_generated_data_smoke(self, small_dataset, ext_sigma):
        matcher = EnforcementMatcher(ext_sigma, small_dataset.target)
        candidates = matcher.candidate_pairs(
            small_dataset.credit, small_dataset.billing
        )[:500]
        result = matcher.match(
            small_dataset.credit, small_dataset.billing, candidates=candidates
        )
        quality = evaluate_matches(
            [pair for pair in result.matches],
            small_dataset.true_matches,
        )
        assert quality.precision > 0.8

"""Unit tests for precision/recall/PC/RR accounting."""

import pytest

from repro.matching.evaluate import (
    MatchQuality,
    evaluate_matches,
    evaluate_reduction,
)


class TestMatchQuality:
    def test_perfect(self):
        truth = frozenset({(0, 0), (1, 1)})
        quality = evaluate_matches([(0, 0), (1, 1)], truth)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_mixed(self):
        truth = frozenset({(0, 0), (1, 1)})
        quality = evaluate_matches([(0, 0), (2, 2)], truth)
        assert quality.precision == 0.5
        assert quality.recall == 0.5
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 1

    def test_empty_prediction(self):
        quality = evaluate_matches([], frozenset({(0, 0)}))
        assert quality.precision == 1.0  # vacuous
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_empty_truth(self):
        quality = evaluate_matches([(0, 0)], frozenset())
        assert quality.recall == 1.0
        assert quality.precision == 0.0

    def test_duplicate_predictions_counted_once(self):
        truth = frozenset({(0, 0)})
        quality = evaluate_matches([(0, 0), (0, 0)], truth)
        assert quality.precision == 1.0

    def test_str(self):
        quality = MatchQuality(1, 1, 0)
        assert "precision=0.500" in str(quality)


class TestReduction:
    def test_pc_and_rr(self):
        truth = frozenset({(0, 0), (1, 1)})
        reduction = evaluate_reduction([(0, 0), (2, 2)], truth, total_pairs=100)
        assert reduction.pairs_completeness == 0.5
        assert reduction.reduction_ratio == pytest.approx(0.98)
        assert reduction.candidate_count == 2

    def test_empty_candidates(self):
        reduction = evaluate_reduction([], frozenset({(0, 0)}), 10)
        assert reduction.pairs_completeness == 0.0
        assert reduction.reduction_ratio == 1.0

    def test_empty_truth_pc_vacuous(self):
        reduction = evaluate_reduction([(0, 0)], frozenset(), 10)
        assert reduction.pairs_completeness == 1.0

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            evaluate_reduction([], frozenset(), 0)

    def test_full_candidate_space_rr_zero(self):
        truth = frozenset({(0, 0)})
        candidates = [(i, j) for i in range(2) for j in range(2)]
        reduction = evaluate_reduction(candidates, truth, 4)
        assert reduction.reduction_ratio == 0.0
        assert reduction.pairs_completeness == 1.0

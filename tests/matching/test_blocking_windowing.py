"""Unit tests for blocking and windowing candidate generation."""

import pytest

from repro.core.rck import RelativeKey
from repro.core.schema import RelationSchema
from repro.matching.blocking import (
    attribute_key,
    block_pairs,
    multi_pass_block_pairs,
    rck_blocking_keys,
)
from repro.matching.windowing import (
    multi_pass_window_pairs,
    rck_sort_keys,
    window_pairs,
)
from repro.metrics.soundex import soundex
from repro.relations.relation import Relation


@pytest.fixture
def left_relation():
    schema = RelationSchema("L", ["name", "zip"])
    return Relation(
        schema,
        [
            {"name": "Clifford", "zip": "07974"},
            {"name": "Smith", "zip": "07974"},
            {"name": "Jones", "zip": "10001"},
        ],
    )


@pytest.fixture
def right_relation():
    schema = RelationSchema("R", ["name", "zip"])
    return Relation(
        schema,
        [
            {"name": "Clivord", "zip": "07974"},
            {"name": "Smith", "zip": "99999"},
        ],
    )


class TestAttributeKey:
    def test_plain_key(self, left_relation):
        key = attribute_key(["zip"])
        assert key(left_relation[0]) == ("07974",)

    def test_encoded_key(self, left_relation):
        key = attribute_key(["name"], [soundex])
        assert key(left_relation[0]) == (soundex("Clifford"),)

    def test_null_encoded_as_empty(self):
        schema = RelationSchema("L", ["name"])
        relation = Relation(schema, [{"name": None}])
        key = attribute_key(["name"])
        assert key(relation[0]) == ("",)

    def test_encoder_count_validation(self):
        with pytest.raises(ValueError):
            attribute_key(["a", "b"], [None])


class TestBlocking:
    def test_exact_blocking(self, left_relation, right_relation):
        key_left = attribute_key(["zip"])
        key_right = attribute_key(["zip"])
        pairs = block_pairs(left_relation, right_relation, key_left, key_right)
        assert set(pairs) == {(0, 0), (1, 0)}

    def test_soundex_blocking_bridges_typos(self, left_relation, right_relation):
        key = attribute_key(["name"], [soundex])
        pairs = block_pairs(left_relation, right_relation, key, key)
        assert (0, 0) in pairs  # Clifford ~ Clivord

    def test_multi_pass_union(self, left_relation, right_relation):
        zip_key = attribute_key(["zip"])
        name_key = attribute_key(["name"], [soundex])
        pairs = multi_pass_block_pairs(
            left_relation,
            right_relation,
            [(zip_key, zip_key), (name_key, name_key)],
        )
        single_zip = set(
            block_pairs(left_relation, right_relation, zip_key, zip_key)
        )
        assert single_zip <= set(pairs)
        assert (1, 1) in pairs  # Smith/Smith found by the name pass only


class TestRckBlockingKeys:
    def test_keys_from_rcks(self, target):
        rcks = [
            RelativeKey.from_triples(
                target, [("LN", "LN", "="), ("tel", "phn", "=")]
            ),
            RelativeKey.from_triples(target, [("email", "email", "=")]),
        ]
        left_key, right_key = rck_blocking_keys(rcks, attribute_count=3)
        # Needs a row-like object over credit/billing; use Fig. 1.
        from repro.datagen.generator import figure1_instances

        _, credit, billing = figure1_instances()
        assert len(left_key(credit[0])) == 3
        assert len(right_key(billing[0])) == 3

    def test_too_few_pairs_rejected(self, target):
        rcks = [RelativeKey.from_triples(target, [("email", "email", "=")])]
        with pytest.raises(ValueError, match="distinct attribute"):
            rck_blocking_keys(rcks, attribute_count=3)

    def test_requires_rcks(self):
        with pytest.raises(ValueError):
            rck_blocking_keys([])


class TestWindowing:
    def test_window_two_adjacent_only(self, left_relation, right_relation):
        key = attribute_key(["zip"])
        pairs = window_pairs(left_relation, right_relation, key, key, window=2)
        # sorted by zip: (L0, L1, R0 @07974), (L2 @10001), (R1 @99999)
        assert (1, 0) in pairs

    def test_window_grows_candidates(self, left_relation, right_relation):
        key = attribute_key(["zip"])
        small = set(window_pairs(left_relation, right_relation, key, key, 2))
        large = set(window_pairs(left_relation, right_relation, key, key, 5))
        assert small <= large
        assert len(large) == 6  # all cross pairs within one window of 5

    def test_window_below_two_empty(self, left_relation, right_relation):
        key = attribute_key(["zip"])
        assert window_pairs(left_relation, right_relation, key, key, 1) == []

    def test_only_cross_side_pairs(self, left_relation, right_relation):
        key = attribute_key(["zip"])
        pairs = window_pairs(left_relation, right_relation, key, key, 10)
        for left_tid, right_tid in pairs:
            assert left_tid in left_relation
            assert right_tid in right_relation

    def test_multi_pass_window(self, left_relation, right_relation):
        zip_key = attribute_key(["zip"])
        name_key = attribute_key(["name"], [soundex])
        union = multi_pass_window_pairs(
            left_relation,
            right_relation,
            [(zip_key, zip_key), (name_key, name_key)],
            window=2,
        )
        assert set(
            window_pairs(left_relation, right_relation, zip_key, zip_key, 2)
        ) <= set(union)

    def test_rck_sort_keys(self, target):
        rcks = [
            RelativeKey.from_triples(
                target, [("LN", "LN", "="), ("tel", "phn", "=")]
            ),
            RelativeKey.from_triples(target, [("email", "email", "=")]),
        ]
        left_key, right_key = rck_sort_keys(rcks, attribute_count=2)
        from repro.datagen.generator import figure1_instances

        _, credit, billing = figure1_instances()
        assert left_key(credit[0]) == ("Clifford", "908-1111111")
        assert right_key(billing[0]) == ("Clifford", "908")

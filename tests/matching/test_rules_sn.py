"""Tests for the equational-theory rules and Sorted Neighborhood."""

import pytest

from repro.core.rck import RelativeKey
from repro.matching.comparison import ComparisonSpec
from repro.matching.evaluate import evaluate_matches
from repro.matching.rules import (
    MatchRule,
    RuleSet,
    default_person_rules,
    rules_from_rcks,
)
from repro.matching.sorted_neighborhood import SortedNeighborhood
from repro.matching.windowing import attribute_key


class TestRuleSet:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RuleSet([])

    def test_duplicate_names_rejected(self):
        rule = MatchRule("r", ComparisonSpec((("FN", "FN", "="),)))
        with pytest.raises(ValueError, match="duplicate"):
            RuleSet([rule, rule])

    def test_disjunctive_semantics(self, fig1):
        _, credit, billing = fig1
        rules = RuleSet(
            [
                MatchRule("email", ComparisonSpec((("email", "email", "="),))),
                MatchRule("phone", ComparisonSpec((("tel", "phn", "="),))),
            ]
        )
        # t1 vs t4: email disagrees ("mc@gm.com" vs "mc"), phone agrees.
        assert rules.matches(credit[0], billing[1])
        assert rules.first_matching_rule(credit[0], billing[1]) == "phone"

    def test_no_rule_fires(self, fig1):
        _, credit, billing = fig1
        rules = RuleSet(
            [MatchRule("ssn-ish", ComparisonSpec((("SSN", "c#", "="),)))]
        )
        assert not rules.matches(credit[0], billing[0])
        assert rules.first_matching_rule(credit[0], billing[0]) == ""


class TestDefaultRules:
    def test_exactly_25_rules(self):
        assert len(default_person_rules()) == 25

    def test_names_unique(self):
        rules = default_person_rules()
        names = [rule.name for rule in rules]
        assert len(names) == len(set(names))

    def test_rules_reference_extended_schema_attributes(self, ext_pair):
        rules = default_person_rules()
        for rule in rules:
            for left_attr, right_attr, _ in rule.spec.features:
                assert left_attr in ext_pair.left
                assert right_attr in ext_pair.right


class TestRulesFromRcks:
    def test_one_rule_per_key(self, target):
        keys = [
            RelativeKey.from_triples(target, [("email", "email", "=")]),
            RelativeKey.from_triples(target, [("tel", "phn", "=")]),
        ]
        rules = rules_from_rcks(keys)
        assert len(rules) == 2

    def test_requires_keys(self):
        with pytest.raises(ValueError):
            rules_from_rcks([])

    def test_rck_rule_is_conjunctive(self, fig1, target):
        _, credit, billing = fig1
        key = RelativeKey.from_triples(
            target, [("email", "email", "="), ("tel", "phn", "=")]
        )
        rules = rules_from_rcks([key])
        # t1 vs t6: both email and phone agree → match (Example 1.1).
        assert rules.matches(credit[0], billing[3])
        # t1 vs t4: phone agrees but email does not → no match by this key.
        assert not rules.matches(credit[0], billing[1])


class TestSortedNeighborhood:
    def test_window_validation(self, target):
        rules = rules_from_rcks(
            [RelativeKey.from_triples(target, [("email", "email", "=")])]
        )
        with pytest.raises(ValueError):
            SortedNeighborhood(rules, window=1)

    def test_run_on_generated_data(self, small_dataset):
        dataset = small_dataset
        from repro.core.findrcks import find_rcks
        from repro.datagen.schemas import extended_mds

        rcks = find_rcks(
            extended_mds(dataset.pair), dataset.target, m=5
        )
        matcher = SortedNeighborhood(rules_from_rcks(rcks), window=10)
        left_key = attribute_key(["zip", "LN"])
        right_key = attribute_key(["zip", "LN"])
        result = matcher.run(
            dataset.credit, dataset.billing, left_key, right_key
        )
        assert result.candidates_examined > 0
        assert result.comparisons_made == result.candidates_examined
        quality = evaluate_matches(result.matches, dataset.true_matches)
        assert quality.precision > 0.9

    def test_multi_pass_supersets_single(self, small_dataset):
        dataset = small_dataset
        rules = default_person_rules()
        matcher = SortedNeighborhood(rules, window=5)
        zip_key = attribute_key(["zip"])
        email_key_left = attribute_key(["email"])
        email_key_right = attribute_key(["email"])
        single = matcher.run(dataset.credit, dataset.billing, zip_key, zip_key)
        multi = matcher.run(
            dataset.credit,
            dataset.billing,
            zip_key,
            zip_key,
            extra_keys=[(email_key_left, email_key_right)],
        )
        assert multi.candidates_examined >= single.candidates_examined
        assert set(single.matches) <= set(multi.matches)

"""Unit and property tests for the Fellegi–Sunter EM estimator."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.em import EMEstimate, fit_em


def _synthetic_vectors(
    pairs: int, p: float, m: float, u: float, features: int, seed: int
):
    """Draw comparison vectors from a known FS model."""
    rng = random.Random(seed)
    vectors = []
    for _ in range(pairs):
        is_match = rng.random() < p
        rate = m if is_match else u
        vectors.append(tuple(rng.random() < rate for _ in range(features)))
    return vectors


class TestFit:
    def test_recovers_separation(self):
        vectors = _synthetic_vectors(
            2000, p=0.2, m=0.9, u=0.05, features=4, seed=1
        )
        estimate = fit_em(vectors)
        for feature in range(4):
            assert estimate.m[feature] > 0.7
            assert estimate.u[feature] < 0.2
        assert 0.1 < estimate.p < 0.3

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            fit_em([])

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(ValueError, match="widths"):
            fit_em([(True,), (True, False)])

    def test_label_swap_guard(self):
        # Initialize in the "swapped" region: the guard must re-orient.
        vectors = _synthetic_vectors(
            1000, p=0.3, m=0.95, u=0.02, features=3, seed=2
        )
        estimate = fit_em(vectors, initial_m=0.1, initial_u=0.9, initial_p=0.5)
        assert sum(estimate.m) > sum(estimate.u)

    def test_converges(self):
        vectors = _synthetic_vectors(500, p=0.2, m=0.9, u=0.1, features=3, seed=3)
        estimate = fit_em(vectors)
        assert estimate.converged
        assert estimate.iterations < 200

    def test_probabilities_clamped(self):
        # Degenerate all-agree sample: probabilities must stay in (0, 1).
        estimate = fit_em([(True, True)] * 50)
        for value in (*estimate.m, *estimate.u, estimate.p):
            assert 0.0 < value < 1.0


class TestWeights:
    @pytest.fixture
    def estimate(self):
        return EMEstimate(
            m=(0.9,), u=(0.1,), p=0.2, iterations=1, converged=True,
            log_likelihood=0.0,
        )

    def test_agreement_weight_positive(self, estimate):
        assert estimate.agreement_weight(0) == pytest.approx(math.log2(9))

    def test_disagreement_weight_negative(self, estimate):
        assert estimate.disagreement_weight(0) == pytest.approx(
            math.log2(0.1 / 0.9)
        )

    def test_score_sums_weights(self, estimate):
        assert estimate.score([True]) == estimate.agreement_weight(0)
        assert estimate.score([False]) == estimate.disagreement_weight(0)


class TestProperties:
    @given(
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_match_scores_exceed_unmatch_scores(self, p, seed):
        vectors = _synthetic_vectors(
            1000, p=p, m=0.9, u=0.05, features=4, seed=seed
        )
        estimate = fit_em(vectors)
        all_agree = estimate.score([True] * 4)
        all_disagree = estimate.score([False] * 4)
        assert all_agree > all_disagree

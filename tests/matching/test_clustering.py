"""Tests for entity clustering of pairwise matches."""


from repro.matching.clustering import (
    Cluster,
    cluster_matches,
    evaluate_clusters,
)


class TestClusterMatches:
    def test_disjoint_pairs(self):
        clusters = cluster_matches([(0, 0), (1, 1)])
        assert len(clusters) == 2
        assert all(cluster.size == 2 for cluster in clusters)

    def test_shared_left_merges(self):
        clusters = cluster_matches([(0, 0), (0, 1)])
        assert len(clusters) == 1
        (cluster,) = clusters
        assert cluster.left_tids == {0}
        assert cluster.right_tids == {0, 1}

    def test_shared_right_merges(self):
        clusters = cluster_matches([(0, 5), (1, 5)])
        (cluster,) = clusters
        assert cluster.left_tids == {0, 1}

    def test_transitive_bridge(self):
        # 0-0, 1-0, 1-1: all four tuples in one entity.
        clusters = cluster_matches([(0, 0), (1, 0), (1, 1)])
        (cluster,) = clusters
        assert cluster.size == 4

    def test_empty(self):
        assert cluster_matches([]) == []

    def test_same_tid_different_sides_not_confused(self):
        clusters = cluster_matches([(7, 7)])
        (cluster,) = clusters
        assert cluster.left_tids == {7}
        assert cluster.right_tids == {7}

    def test_implied_pairs(self):
        cluster = Cluster(frozenset({0, 1}), frozenset({2}))
        assert cluster.implied_pairs() == {(0, 2), (1, 2)}


class TestEvaluateClusters:
    def test_perfect_clustering(self):
        truth = frozenset({(0, 0), (0, 1)})
        clusters = cluster_matches([(0, 0), (0, 1)])
        quality = evaluate_clusters(clusters, truth)
        assert quality.pairwise.precision == 1.0
        assert quality.pairwise.recall == 1.0
        assert quality.cluster_count == 1

    def test_over_merge_penalized(self):
        # A false bridge merges two entities: implied pairs include
        # wrong ones → precision drops.
        truth = frozenset({(0, 0), (1, 1)})
        clusters = cluster_matches([(0, 0), (1, 1), (0, 1)])
        quality = evaluate_clusters(clusters, truth)
        assert quality.pairwise.precision < 1.0
        assert quality.pairwise.recall == 1.0
        assert quality.largest_cluster == 4

    def test_purity_with_entity_maps(self):
        truth = frozenset({(0, 0), (1, 1)})
        clusters = cluster_matches([(0, 0), (1, 1), (0, 1)])
        quality = evaluate_clusters(
            clusters,
            truth,
            left_entity={0: 100, 1: 200},
            right_entity={0: 100, 1: 200},
        )
        assert quality.impure_clusters == 1

    def test_str(self):
        truth = frozenset({(0, 0)})
        quality = evaluate_clusters(cluster_matches([(0, 0)]), truth)
        assert "clusters=1" in str(quality)


class TestOnGeneratedData:
    def test_rck_matches_cluster_cleanly(self, small_dataset, ext_sigma):
        from repro.matching.pipeline import RCKMatcher

        matcher = RCKMatcher.from_mds(ext_sigma, small_dataset.target, top_k=5)
        result = matcher.match(small_dataset.credit, small_dataset.billing)
        clusters = cluster_matches(result.matches)
        quality = evaluate_clusters(
            clusters,
            small_dataset.true_matches,
            left_entity=small_dataset.credit_entity,
            right_entity=small_dataset.billing_entity,
        )
        # Tight RCK rules: very few impure clusters, high pairwise precision.
        assert quality.impure_clusters <= 0.05 * quality.cluster_count
        assert quality.pairwise.precision > 0.9

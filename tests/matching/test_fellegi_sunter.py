"""Tests for the Fellegi–Sunter matcher on generated data."""

import pytest

from repro.matching.comparison import ComparisonSpec, equality_spec
from repro.matching.evaluate import evaluate_matches
from repro.matching.fellegi_sunter import FellegiSunter
from repro.matching.windowing import attribute_key, window_pairs


@pytest.fixture(scope="module")
def fitted(small_dataset_module):
    dataset = small_dataset_module
    spec = ComparisonSpec(
        (
            ("email", "email", "="),
            ("tel", "phn", "="),
            ("FN", "FN", "dl(0.8)"),
            ("LN", "LN", "dl(0.8)"),
            ("street", "street", "="),
            ("zip", "zip", "="),
        )
    )
    left_key = attribute_key(["zip", "LN"])
    right_key = attribute_key(["zip", "LN"])
    candidates = window_pairs(
        dataset.credit, dataset.billing, left_key, right_key, 10
    )
    matcher = FellegiSunter(spec)
    matcher.fit(dataset.credit, dataset.billing, candidates, seed=0)
    return dataset, matcher, candidates


@pytest.fixture(scope="module")
def small_dataset_module():
    from repro.datagen.generator import generate_dataset

    return generate_dataset(300, seed=42)


class TestFit:
    def test_fit_returns_estimate(self, fitted):
        _, matcher, _ = fitted
        assert matcher.estimate is not None
        assert len(matcher.estimate.m) == 6

    def test_fit_requires_candidates(self, small_dataset_module):
        matcher = FellegiSunter(equality_spec([("FN", "FN")]))
        with pytest.raises(ValueError):
            matcher.fit(
                small_dataset_module.credit, small_dataset_module.billing, []
            )

    def test_unfitted_classify_raises(self, small_dataset_module):
        matcher = FellegiSunter(equality_spec([("FN", "FN")]))
        with pytest.raises(RuntimeError, match="not fitted"):
            matcher.classify(
                small_dataset_module.credit,
                small_dataset_module.billing,
                [(0, 0)],
            )

    def test_sampling_bounded(self, fitted):
        dataset, _, candidates = fitted
        matcher = FellegiSunter(equality_spec([("FN", "FN")]))
        matcher.fit(dataset.credit, dataset.billing, candidates, sample_size=50)
        assert matcher.estimate is not None


class TestClassification:
    def test_quality_on_candidates(self, fitted):
        dataset, matcher, candidates = fitted
        matches = matcher.classify(dataset.credit, dataset.billing, candidates)
        quality = evaluate_matches(matches, dataset.true_matches)
        # The ad-hoc spec is decent but not tuned (household co-members
        # collide on zip/LN/street); quality must still be far above
        # chance on the candidate subset.
        assert quality.precision > 0.6
        assert quality.recall > 0.7
        assert quality.f1 > 0.7

    def test_explicit_threshold_override(self, fitted):
        dataset, matcher, candidates = fitted
        strict = FellegiSunter(
            matcher.spec, estimate=matcher.estimate, threshold=1e9
        )
        assert strict.classify(dataset.credit, dataset.billing, candidates) == []

    def test_score_monotone_in_agreements(self, fitted):
        dataset, matcher, _ = fitted
        estimate = matcher.estimate
        width = len(matcher.spec)
        assert estimate.score([True] * width) > estimate.score(
            [False] * width
        )

    def test_feature_weights_table(self, fitted):
        _, matcher, _ = fitted
        rows = matcher.feature_weights()
        assert len(rows) == len(matcher.spec)
        name, agree, disagree = rows[0]
        assert "email" in name
        assert agree > disagree

    def test_decision_threshold_from_prior(self, fitted):
        _, matcher, _ = fitted
        # threshold = log2((1-p)/p); with p < 0.5 it must be positive.
        if matcher.estimate.p < 0.5:
            assert matcher.decision_threshold() > 0

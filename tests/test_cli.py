"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import CliError, load_md_file, load_schema_spec, main
from repro.datagen.generator import figure1_instances
from repro.relations.csvio import save_relation


@pytest.fixture
def schema_file(tmp_path):
    spec = {
        "left": {
            "name": "credit",
            "attributes": ["c#", "SSN", "FN", "LN", "addr", "tel", "email",
                           "gender", "type"],
        },
        "right": {
            "name": "billing",
            "attributes": ["c#", "FN", "LN", "post", "phn", "email",
                           "gender", "item", "price"],
        },
        "target": {
            "left": ["FN", "LN", "addr", "tel", "gender"],
            "right": ["FN", "LN", "post", "phn", "gender"],
        },
    }
    path = tmp_path / "schema.json"
    path.write_text(json.dumps(spec))
    return path


@pytest.fixture
def md_file(tmp_path):
    path = tmp_path / "mds.txt"
    path.write_text(
        "# Example 2.1\n"
        "credit[LN] = billing[LN] & credit[addr] = billing[post] & "
        "credit[FN] ~dl(0.8) billing[FN] -> "
        "credit[FN] <=> billing[FN] & credit[LN] <=> billing[LN] & "
        "credit[addr] <=> billing[post] & credit[tel] <=> billing[phn] & "
        "credit[gender] <=> billing[gender]\n"
        "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]\n"
        "credit[email] = billing[email] -> "
        "credit[FN] <=> billing[FN] & credit[LN] <=> billing[LN]\n"
    )
    return path


class TestSpecLoading:
    def test_load_schema_spec(self, schema_file):
        pair, target = load_schema_spec(schema_file)
        assert pair.left.name == "credit"
        assert len(target) == 5

    def test_missing_file(self, tmp_path):
        with pytest.raises(CliError, match="not found"):
            load_schema_spec(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CliError, match="invalid JSON"):
            load_schema_spec(path)

    def test_missing_section(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"left": {"name": "a", "attributes": ["x"]}}))
        with pytest.raises(CliError, match="right"):
            load_schema_spec(path)

    def test_load_md_file(self, schema_file, md_file):
        pair, _ = load_schema_spec(schema_file)
        assert len(load_md_file(md_file, pair)) == 3

    def test_md_parse_error_reported(self, schema_file, tmp_path):
        pair, _ = load_schema_spec(schema_file)
        bad = tmp_path / "bad.txt"
        bad.write_text("garbage -> nonsense\n")
        with pytest.raises(CliError, match="cannot parse"):
            load_md_file(bad, pair)


class TestDeduce:
    def test_deduce_prints_keys(self, schema_file, md_file, capsys):
        code = main(
            ["deduce", "--schema", str(schema_file), "--mds", str(md_file),
             "-m", "6"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "RCK(s) relative to" in output
        assert "email" in output  # rck3/rck4 mention email

    def test_deduce_missing_schema(self, md_file, capsys):
        code = main(["deduce", "--schema", "/nope.json", "--mds", str(md_file)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_deducible_md_exit_zero(self, schema_file, md_file, capsys):
        code = main(
            ["check", "--schema", str(schema_file), "--mds", str(md_file),
             "credit[email] = billing[email] & credit[tel] = billing[phn] -> "
             "credit[gender] <=> billing[gender]"]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_non_deducible_md_exit_one(self, schema_file, md_file, capsys):
        code = main(
            ["check", "--schema", str(schema_file), "--mds", str(md_file),
             "credit[email] = billing[email] -> credit[addr] <=> billing[post]"]
        )
        assert code == 1
        assert "False" in capsys.readouterr().out

    def test_bad_md_syntax(self, schema_file, md_file, capsys):
        code = main(
            ["check", "--schema", str(schema_file), "--mds", str(md_file),
             "garbage"]
        )
        assert code == 2

    def test_explain_prints_derivation(self, schema_file, md_file, capsys):
        code = main(
            ["check", "--schema", str(schema_file), "--mds", str(md_file),
             "--explain",
             "credit[email] = billing[email] & credit[tel] = billing[phn] -> "
             "credit[gender] <=> billing[gender]"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Derivation:" in output
        assert "[by MD:" in output

    def test_explain_failure_report(self, schema_file, md_file, capsys):
        code = main(
            ["check", "--schema", str(schema_file), "--mds", str(md_file),
             "--explain",
             "credit[email] = billing[email] -> credit[addr] <=> billing[post]"]
        )
        assert code == 1
        assert "No derivation" in capsys.readouterr().out


class TestMatch:
    def test_match_fig1(self, schema_file, md_file, tmp_path, capsys):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        out_path = tmp_path / "matches.csv"
        code = main(
            ["match", "--schema", str(schema_file), "--mds", str(md_file),
             "--left", str(left_path), "--right", str(right_path),
             "-o", str(out_path), "--window", "10"]
        )
        assert code == 0
        with out_path.open() as handle:
            rows = list(csv.DictReader(handle))
        matched = {(int(r["left_tid"]), int(r["right_tid"])) for r in rows}
        # Windowed candidates catch t1 with several billing tuples.
        assert matched
        assert all(left == 0 for left, _ in matched)  # only t1 matches

    def test_match_workers_rejected_in_direct_mode(
        self, schema_file, md_file, tmp_path, capsys
    ):
        """--workers must never be silently ignored.

        The legacy flag form lowers to direct-mode matching, which has
        no chase to parallelize — combining it with --workers is an
        explicit error, not a no-op.
        """
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        with pytest.warns(DeprecationWarning):
            code = main(
                ["match", "--schema", str(schema_file), "--mds", str(md_file),
                 "--left", str(left_path), "--right", str(right_path),
                 "--workers", "4"]
            )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_match_plain_csv_without_tids(self, schema_file, md_file, tmp_path):
        left_path = tmp_path / "credit.csv"
        left_path.write_text(
            "FN,LN,addr,tel,email,gender\n"
            "Mark,Clifford,10 Oak Street,908-1111111,mc@gm.com,M\n"
        )
        right_path = tmp_path / "billing.csv"
        right_path.write_text(
            "FN,LN,post,phn,email,gender\n"
            "Marx,Clifford,10 Oak Street,908-1111111,mc@gm.com,M\n"
        )
        code = main(
            ["match", "--schema", str(schema_file), "--mds", str(md_file),
             "--left", str(left_path), "--right", str(right_path)]
        )
        assert code == 0

    def test_match_unknown_column_rejected(self, schema_file, md_file, tmp_path, capsys):
        left_path = tmp_path / "credit.csv"
        left_path.write_text("WRONG\nx\n")
        right_path = tmp_path / "billing.csv"
        right_path.write_text("FN\nMarx\n")
        code = main(
            ["match", "--schema", str(schema_file), "--mds", str(md_file),
             "--left", str(left_path), "--right", str(right_path)]
        )
        assert code == 2
        assert "WRONG" in capsys.readouterr().err


class TestPlanExplain:
    def test_explain_prints_compiled_plan(self, schema_file, md_file, capsys):
        code = main(
            ["plan", "explain", "--schema", str(schema_file),
             "--mds", str(md_file)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "EnforcementPlan over (credit, billing)" in output
        assert "unique predicate(s)" in output
        assert "exact equality" in output
        assert "DamerauLevenshtein >= 0.8" in output
        assert "sorted-neighborhood(window=10" in output

    def test_explain_hash_backend(self, schema_file, md_file, capsys):
        code = main(
            ["plan", "explain", "--schema", str(schema_file),
             "--mds", str(md_file), "--backend", "hash"]
        )
        assert code == 0
        assert "hash(" in capsys.readouterr().out

    def test_explain_json(self, schema_file, md_file, capsys):
        code = main(
            ["plan", "explain", "--schema", str(schema_file),
             "--mds", str(md_file), "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["unique_predicates"] < document["atoms_before_dedup"]
        assert len(document["rules"]) == 3
        assert document["keys"]

    def test_explain_missing_schema(self, md_file, capsys):
        code = main(
            ["plan", "explain", "--schema", "/nope.json",
             "--mds", str(md_file)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Deduced RCKs" in output
        assert "(0, 3)" in output  # t1 ~ t6


class TestEngine:
    @pytest.fixture
    def fig1_csvs(self, tmp_path):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        return left_path, right_path

    def test_ingest_creates_store(self, schema_file, md_file, fig1_csvs,
                                  tmp_path, capsys):
        left_path, right_path = fig1_csvs
        store_path = tmp_path / "store.json"
        code = main(
            ["engine", "ingest", "--schema", str(schema_file),
             "--mds", str(md_file), "--store", str(store_path),
             "--left", str(left_path), "--right", str(right_path)]
        )
        assert code == 0
        assert store_path.exists()
        output = capsys.readouterr().out
        assert "ingested 6 record(s)" in output

    def test_ingest_resumes_existing_store(self, schema_file, md_file,
                                           fig1_csvs, tmp_path, capsys):
        left_path, right_path = fig1_csvs
        store_path = tmp_path / "store.json"
        assert main(
            ["engine", "ingest", "--schema", str(schema_file),
             "--mds", str(md_file), "--store", str(store_path),
             "--left", str(left_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["engine", "ingest", "--schema", str(schema_file),
             "--mds", str(md_file), "--store", str(store_path),
             "--right", str(right_path), "--json"]
        )
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["left_rows"] == 2
        assert stats["right_rows"] == 4
        assert stats["matched_clusters"] == 1
        assert stats["new_merges"] > 0

    def test_stats_and_query(self, schema_file, md_file, fig1_csvs,
                             tmp_path, capsys):
        left_path, right_path = fig1_csvs
        store_path = tmp_path / "store.json"
        assert main(
            ["engine", "ingest", "--schema", str(schema_file),
             "--mds", str(md_file), "--store", str(store_path),
             "--left", str(left_path), "--right", str(right_path)]
        ) == 0
        capsys.readouterr()
        assert main(["engine", "stats", "--store", str(store_path)]) == 0
        output = capsys.readouterr().out
        assert "left_rows: 2" in output
        assert "matched_clusters: 1" in output

        assert main(
            ["engine", "query", "--store", str(store_path),
             "--side", "left", "--tid", "0", "--json"]
        ) == 0
        cluster = json.loads(capsys.readouterr().out)
        assert cluster["left_tids"] == [0]
        assert cluster["right_tids"] == [0, 1, 2, 3]

    def test_query_unknown_tid(self, schema_file, md_file, fig1_csvs,
                               tmp_path, capsys):
        left_path, _ = fig1_csvs
        store_path = tmp_path / "store.json"
        assert main(
            ["engine", "ingest", "--schema", str(schema_file),
             "--mds", str(md_file), "--store", str(store_path),
             "--left", str(left_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["engine", "query", "--store", str(store_path),
             "--side", "right", "--tid", "99"]
        )
        assert code == 2
        assert "no right record" in capsys.readouterr().err

    def test_stats_missing_store(self, tmp_path, capsys):
        code = main(["engine", "stats", "--store", str(tmp_path / "no.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestEngineStreamGuard:
    """A store that cannot stream the spec's blocking backend exits 2.

    Sorted-neighborhood specs used to stream under hash semantics
    silently; the stream now refuses any store whose live blocking
    structures disagree with the declared ``blocking.backend``.
    """

    @pytest.fixture
    def sn_spec_file(self, schema_file, md_file, tmp_path):
        schema = json.loads(schema_file.read_text())
        document = {
            "version": 1,
            "schema": {"left": schema["left"], "right": schema["right"]},
            "target": schema["target"],
            "rules": {
                "mds": [
                    line.strip()
                    for line in md_file.read_text().splitlines()
                    if line.strip() and not line.strip().startswith("#")
                ],
                "top_k": 5,
            },
            "blocking": {"backend": "sorted-neighborhood", "window": 10},
            "execution": {"mode": "enforce"},
        }
        path = tmp_path / "sn-spec.json"
        path.write_text(json.dumps(document))
        return path

    def test_legacy_hash_snapshot_under_sn_spec_exits_two(
        self, sn_spec_file, tmp_path, capsys
    ):
        from repro.datagen.generator import figure1_instances as fig1

        _, credit, billing = fig1()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        store_path = tmp_path / "store.json"
        assert main(
            ["engine", "ingest", "--spec", str(sn_spec_file),
             "--store", str(store_path), "--left", str(left_path)]
        ) == 0
        capsys.readouterr()

        # Resuming the matching SN store streams fine.
        assert main(
            ["engine", "ingest", "--spec", str(sn_spec_file),
             "--store", str(store_path), "--right", str(right_path)]
        ) == 0
        capsys.readouterr()

        # A snapshot from the era before the blocking section existed
        # restores as a hash-blocked store: same fingerprint, different
        # streaming semantics — refused, not silently substituted.
        snapshot = json.loads(store_path.read_text())
        del snapshot["blocking"]
        store_path.write_text(json.dumps(snapshot))
        code = main(
            ["engine", "ingest", "--spec", str(sn_spec_file),
             "--store", str(store_path), "--right", str(right_path)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "streams under 'hash'" in err
        assert "re-bootstrap" in err


# ----------------------------------------------------------------------
# The spec-driven surface (PR 3): --spec, spec validate, deprecations
# ----------------------------------------------------------------------


@pytest.fixture
def spec_file(schema_file, md_file, tmp_path):
    """A ResolutionSpec equivalent to the legacy schema+MD fixtures."""
    schema = json.loads(schema_file.read_text())
    document = {
        "version": 1,
        "schema": {"left": schema["left"], "right": schema["right"]},
        "target": schema["target"],
        "rules": {
            "mds": [
                line.strip()
                for line in md_file.read_text().splitlines()
                if line.strip() and not line.strip().startswith("#")
            ],
            "top_k": 5,
        },
        "execution": {"mode": "direct"},
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(document))
    return path


class TestSpecValidate:
    def test_valid_spec_exits_zero(self, spec_file, capsys):
        assert main(["spec", "validate", str(spec_file)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_invalid_spec_reports_all_errors_and_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({
            "version": 9,
            "schema": {"left": {"name": "a", "attributes": ["x"]}},
            "rules": {"mds": ["garbage"]},
            "blocking": {"backend": "bogus"},
            "resolution": {"policy": "coin-flip"},
        }))
        assert main(["spec", "validate", str(path)]) == 2
        err = capsys.readouterr().err
        # Several independent problems, all reported in one run.
        assert "unsupported spec version 9" in err
        assert "bogus" in err
        assert "coin-flip" in err
        assert "error(s)" in err

    def test_missing_spec_file_exits_two(self, tmp_path, capsys):
        assert main(["spec", "validate", str(tmp_path / "no.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert main(["spec", "validate", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err


class TestSpecDrivenCommands:
    def test_match_spec_equals_flag_form(self, schema_file, md_file, spec_file,
                                         tmp_path, capsys):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)

        assert main(
            ["match", "--spec", str(spec_file),
             "--left", str(left_path), "--right", str(right_path)]
        ) == 0
        spec_out = capsys.readouterr().out
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert main(
                ["match", "--schema", str(schema_file), "--mds", str(md_file),
                 "--left", str(left_path), "--right", str(right_path)]
            ) == 0
        flag_out = capsys.readouterr().out
        assert spec_out == flag_out

    def test_deduce_with_spec(self, spec_file, capsys):
        assert main(["deduce", "--spec", str(spec_file)]) == 0
        assert "RCK(s) relative to" in capsys.readouterr().out

    def test_plan_explain_with_spec(self, spec_file, capsys):
        assert main(["plan", "explain", "--spec", str(spec_file)]) == 0
        output = capsys.readouterr().out
        assert "Workspace: ResolutionSpec v1" in output
        assert "EnforcementPlan over (credit, billing)" in output

    def test_check_with_spec(self, spec_file, capsys):
        code = main(
            ["check", "--spec", str(spec_file),
             "credit[email] = billing[email] & credit[tel] = billing[phn] -> "
             "credit[gender] <=> billing[gender]"]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_invalid_spec_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"version": 1}))
        assert main(["deduce", "--spec", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_spec_conflicts_with_schema_flags(self, spec_file, schema_file, capsys):
        code = main(
            ["deduce", "--spec", str(spec_file), "--schema", str(schema_file)]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_tuning_flag_overrides_spec(self, spec_file, capsys):
        assert main(["deduce", "--spec", str(spec_file), "-m", "1"]) == 0
        assert "# 1 RCK(s)" in capsys.readouterr().out

    def test_json_with_output_writes_both(self, spec_file, tmp_path, capsys):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        out_path = tmp_path / "matches.csv"
        assert main(
            ["match", "--spec", str(spec_file),
             "--left", str(left_path), "--right", str(right_path),
             "-o", str(out_path), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        with out_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(report["matches"])

    def test_neither_spec_nor_flags_exits_two(self, capsys):
        assert main(["deduce"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_flag_form_warns_deprecation(self, schema_file, md_file, capsys):
        with pytest.warns(DeprecationWarning, match="--schema/--mds"):
            assert main(
                ["deduce", "--schema", str(schema_file), "--mds", str(md_file)]
            ) == 0


class TestEngineSpecFingerprint:
    def test_ingest_rejects_store_from_other_spec(self, spec_file, tmp_path, capsys):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        save_relation(credit, left_path)
        store_path = tmp_path / "store.json"
        assert main(
            ["engine", "ingest", "--spec", str(spec_file),
             "--store", str(store_path), "--left", str(left_path)]
        ) == 0
        capsys.readouterr()

        # A materially different spec (other top_k) must be rejected.
        document = json.loads(spec_file.read_text())
        document["rules"]["top_k"] = 2
        other = tmp_path / "other.json"
        other.write_text(json.dumps(document))
        code = main(
            ["engine", "ingest", "--spec", str(other),
             "--store", str(store_path), "--left", str(left_path)]
        )
        assert code == 2
        assert "built from spec" in capsys.readouterr().err

    def test_ingest_resumes_under_same_spec(self, spec_file, tmp_path, capsys):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        store_path = tmp_path / "store.json"
        assert main(
            ["engine", "ingest", "--spec", str(spec_file),
             "--store", str(store_path), "--left", str(left_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["engine", "ingest", "--spec", str(spec_file),
             "--store", str(store_path), "--right", str(right_path), "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["left_rows"] == 2
        assert stats["right_rows"] == 4
        assert stats["matched_clusters"] == 1
        assert stats["spec_fingerprint"]


# ----------------------------------------------------------------------
# The durable SQLite backend: routing, migration, and error surfaces
# ----------------------------------------------------------------------


class TestEngineSQLite:
    @pytest.fixture
    def fig1_csvs(self, tmp_path):
        _, credit, billing = figure1_instances()
        left_path = tmp_path / "credit.csv"
        right_path = tmp_path / "billing.csv"
        save_relation(credit, left_path)
        save_relation(billing, right_path)
        return left_path, right_path

    def _ingest(self, spec_file, fig1_csvs, store_path, extra=()):
        left_path, right_path = fig1_csvs
        return main(
            ["engine", "ingest", "--spec", str(spec_file),
             "--store", str(store_path), "--left", str(left_path),
             "--right", str(right_path), *extra]
        )

    def test_db_suffix_creates_sqlite_store(self, spec_file, fig1_csvs,
                                            tmp_path, capsys):
        from repro.engine import is_sqlite_file

        store_path = tmp_path / "store.db"
        assert self._ingest(spec_file, fig1_csvs, store_path) == 0
        assert is_sqlite_file(store_path)
        capsys.readouterr()
        assert main(["engine", "stats", "--store", str(store_path),
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["backend"] == "sqlite"
        assert stats["disk_bytes"] > 0
        assert stats["left_rows"] == 2
        assert stats["matched_clusters"] == 1

    def test_spec_persistence_section_routes_to_sqlite(
            self, spec_file, fig1_csvs, tmp_path, capsys):
        from repro.engine import is_sqlite_file

        document = json.loads(spec_file.read_text())
        # An extension-less path: only the spec says it is durable.
        store_path = tmp_path / "durable-store"
        document["persistence"] = {"backend": "sqlite",
                                   "path": str(store_path)}
        spec_path = tmp_path / "durable.json"
        spec_path.write_text(json.dumps(document))
        assert self._ingest(spec_path, fig1_csvs, store_path) == 0
        assert is_sqlite_file(store_path)

    def test_sqlite_store_resumes_and_queries(self, spec_file, fig1_csvs,
                                              tmp_path, capsys):
        left_path, right_path = fig1_csvs
        store_path = tmp_path / "store.db"
        assert main(
            ["engine", "ingest", "--spec", str(spec_file),
             "--store", str(store_path), "--left", str(left_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["engine", "ingest", "--spec", str(spec_file),
             "--store", str(store_path), "--right", str(right_path),
             "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["left_rows"] == 2
        assert stats["right_rows"] == 4
        assert stats["matched_clusters"] == 1
        assert main(
            ["engine", "query", "--store", str(store_path),
             "--side", "left", "--tid", "0"]
        ) == 0
        assert "cluster" in capsys.readouterr().out

    def test_stats_prints_backend_line(self, spec_file, fig1_csvs,
                                       tmp_path, capsys):
        store_path = tmp_path / "store.db"
        assert self._ingest(spec_file, fig1_csvs, store_path) == 0
        capsys.readouterr()
        assert main(["engine", "stats", "--store", str(store_path)]) == 0
        output = capsys.readouterr().out
        assert "backend: sqlite" in output
        assert "disk_bytes:" in output

    def test_json_store_stats_print_memory_backend(self, spec_file,
                                                   fig1_csvs, tmp_path,
                                                   capsys):
        store_path = tmp_path / "store.json"
        assert self._ingest(spec_file, fig1_csvs, store_path) == 0
        capsys.readouterr()
        assert main(["engine", "stats", "--store", str(store_path)]) == 0
        output = capsys.readouterr().out
        assert "backend: memory" in output
        assert "disk_bytes:" not in output

    def test_migrate_round_trip(self, spec_file, fig1_csvs, tmp_path,
                                capsys):
        json_path = tmp_path / "store.json"
        assert self._ingest(spec_file, fig1_csvs, json_path) == 0
        capsys.readouterr()
        db_path = tmp_path / "store.db"
        assert main(["engine", "migrate", str(json_path),
                     str(db_path)]) == 0
        assert "snapshot -> sqlite" in capsys.readouterr().out
        back_path = tmp_path / "back.json"
        assert main(["engine", "migrate", str(db_path), str(back_path),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["direction"] == "sqlite -> snapshot"
        original = json.loads(json_path.read_text())
        roundtripped = json.loads(back_path.read_text())
        assert roundtripped == original

    def test_migrated_store_keeps_fingerprint(self, spec_file, fig1_csvs,
                                              tmp_path, capsys):
        """A migrated store resumes under the same spec it was built from."""
        json_path = tmp_path / "store.json"
        assert self._ingest(spec_file, fig1_csvs, json_path) == 0
        db_path = tmp_path / "store.db"
        assert main(["engine", "migrate", str(json_path),
                     str(db_path)]) == 0
        capsys.readouterr()
        assert self._ingest(spec_file, fig1_csvs, db_path,
                            extra=["--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["backend"] == "sqlite"
        # Re-ingesting the same CSVs appends: the resume was accepted.
        assert stats["left_rows"] == 4

    def test_migrate_refuses_overwrite(self, spec_file, fig1_csvs,
                                       tmp_path, capsys):
        json_path = tmp_path / "store.json"
        assert self._ingest(spec_file, fig1_csvs, json_path) == 0
        existing = tmp_path / "exists.db"
        existing.write_text("precious")
        capsys.readouterr()
        code = main(["engine", "migrate", str(json_path), str(existing)])
        assert code == 2
        assert "refusing to overwrite" in capsys.readouterr().err
        assert existing.read_text() == "precious"

    def test_migrate_missing_source_exits_two(self, tmp_path, capsys):
        code = main(["engine", "migrate", str(tmp_path / "no.json"),
                     str(tmp_path / "out.db")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_corrupt_store_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.db"
        bad.write_text("this is not a database")
        code = main(["engine", "stats", "--store", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot" in err

    def test_sqlite_store_from_other_spec_exits_two(
            self, spec_file, fig1_csvs, tmp_path, capsys):
        store_path = tmp_path / "store.db"
        assert self._ingest(spec_file, fig1_csvs, store_path) == 0
        document = json.loads(spec_file.read_text())
        document["resolution"] = {"policy": "lexicographic-min"}
        other = tmp_path / "other.json"
        other.write_text(json.dumps(document))
        capsys.readouterr()
        code = self._ingest(other, fig1_csvs, store_path)
        assert code == 2
        assert "built from spec" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_builds_server_from_spec_and_flags(self, spec_file,
                                                     monkeypatch):
        import repro.serve

        launched = {}
        monkeypatch.setattr(
            repro.serve, "serve_forever",
            lambda server: launched.setdefault("server", server),
        )
        code = main([
            "serve", "--spec", str(spec_file), "--host", "0.0.0.0",
            "--port", "0", "--max-batch", "4", "--max-delay-ms", "3",
            "--queue-limit", "7",
        ])
        assert code == 0
        server = launched["server"]
        assert (server.host, server.port) == ("0.0.0.0", 0)
        assert server.max_batch == 4
        assert server.max_delay_ms == 3
        assert server.queue_limit == 7
        # No flags -> the spec's serve section (here: its defaults).
        monkeypatch.setattr(
            repro.serve, "serve_forever",
            lambda server: launched.__setitem__("defaulted", server),
        )
        assert main(["serve", "--spec", str(spec_file)]) == 0
        defaulted = launched["defaulted"]
        assert (defaulted.host, defaulted.port) == ("127.0.0.1", 8080)
        assert defaulted.max_batch == 16

    def test_serve_missing_spec_exits_two(self, tmp_path, capsys):
        code = main(["serve", "--spec", str(tmp_path / "no.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

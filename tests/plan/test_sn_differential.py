"""Differential suite for sorted-neighborhood specs: stream ≡ batch, shard ≡ serial.

The acceptance criteria of the window-encoded SN index, end-to-end
through the spec API:

* a **streaming** SN run (``Workspace.stream``) converges to the same
  clusters and the same candidate universe as the **batch** run of the
  same spec — for every :mod:`repro.datagen.streams` arrival scenario,
  on both store backends (memory and SQLite);
* a **sharded** SN run (workers 2 and 4) produces a report identical to
  the serial one, with real shards and no serial fallback — the legacy
  backend's unconditional ``single-component`` fallback is retired;
* a store that cannot honor the spec's declared blocking backend is
  rejected with :class:`~repro.api.spec.SpecError` — never the silent
  hash substitution this suite exists to prevent (CLI exit 2 covered in
  ``tests/test_cli.py``).

CI runs this file under both ``fork`` and ``spawn`` start methods as
part of the parallel differential matrix.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Workspace
from repro.api.spec import ResolutionSpec, SpecError
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.engine.store import MatchStore
from repro.experiments.harness import resolution_spec_document
from repro.plan import parallel

SCENARIOS = {
    "arrival": arrival_stream,
    "duplicate-burst": duplicate_burst_stream,
    "late-duplicate": late_duplicate_stream,
}

STORE_BACKENDS = ("memory", "sqlite")


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(120, seed=3)


def _document(dataset, workers=1, **overrides):
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "sorted-neighborhood", "window": 10},
        execution={"mode": "enforce", "workers": workers},
    )
    document.update(overrides)
    return document


@pytest.fixture(scope="module")
def batch_reference(dataset):
    """The serial batch run every other run must agree with."""
    workspace = Workspace.from_dict(_document(dataset, workers=1))
    report = workspace.match(dataset.credit, dataset.billing)
    candidates = workspace.plan.candidates(dataset.credit, dataset.billing)
    return {
        "matches": report.matches,
        "clusters": report.clusters,
        "fingerprint": report.fingerprint,
        "candidates": sorted(candidates),
    }


def _cluster_set(store):
    return sorted(
        (tuple(sorted(cluster.left_tids)), tuple(sorted(cluster.right_tids)))
        for cluster in store.clusters()
    )


def _batch_cluster_set(clusters):
    return sorted(
        (tuple(sorted(cluster.left_tids)), tuple(sorted(cluster.right_tids)))
        for cluster in clusters
    )


@pytest.mark.parametrize("store_backend", STORE_BACKENDS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS), ids=sorted(SCENARIOS))
def test_streaming_sn_equals_batch(
    scenario, store_backend, dataset, batch_reference, tmp_path
):
    """Satellite (1): an SN-spec stream converges to the batch run."""
    overrides = {}
    if store_backend == "sqlite":
        overrides["persistence"] = {
            "backend": "sqlite",
            "path": str(tmp_path / f"{scenario}.db"),
        }
    workspace = Workspace.from_dict(_document(dataset, **overrides))
    matcher = workspace.stream()
    store = matcher.store
    assert store.blocking.family == "sorted-neighborhood"
    for event in SCENARIOS[scenario](dataset, seed=5).events:
        # Dataset tids are preserved so clusters and candidate pairs are
        # directly comparable with the batch run's.
        matcher.ingest(event.side, event.values, tid=event.tid)

    # Identical clusters, and the identical candidate universe: the
    # live rank runs describe exactly the batch window pairs.
    assert _cluster_set(store) == _batch_cluster_set(
        batch_reference["clusters"]
    )
    if store_backend == "memory":
        assert (
            store.blocking.scan_candidates() == batch_reference["candidates"]
        )
    else:
        assert store.blocking.candidates() == batch_reference["candidates"]
    assert workspace.fingerprint == batch_reference["fingerprint"]

    # The obs counters prove the SN path actually ran.
    assert workspace.metrics.counters["engine.sn_probes"] > 0
    assert workspace.metrics.gauges["engine.sn_blocks"] > 1
    store.close()


@pytest.mark.parametrize("workers", (2, 4))
def test_sharded_sn_equals_serial(workers, dataset, batch_reference, monkeypatch):
    """Satellite (3): SN workloads shard; the report does not change."""
    monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)
    workspace = Workspace.from_dict(_document(dataset, workers=workers))
    report = workspace.match(dataset.credit, dataset.billing)
    stats = workspace.plan.stats
    assert stats.parallel_chases == 1
    assert stats.shards > 1
    assert stats.serial_fallback_reason is None
    assert stats.workers_spawned <= workers
    assert report.matches == batch_reference["matches"]
    assert report.clusters == batch_reference["clusters"]
    assert report.fingerprint == batch_reference["fingerprint"]


class TestStreamGuard:
    """The silent hash substitution is dead: mismatches raise SpecError."""

    def test_hash_built_store_rejected_under_sn_spec(self, dataset):
        sn_workspace = Workspace.from_dict(_document(dataset))
        plan = sn_workspace.plan
        hash_store = MatchStore(
            plan.target, plan.rcks, blocking_backend="hash"
        )
        hash_store.spec_fingerprint = sn_workspace.fingerprint
        with pytest.raises(SpecError, match="streams under 'hash'"):
            sn_workspace.stream(store=hash_store)

    def test_unsupported_backend_rejected(self, dataset, monkeypatch):
        workspace = Workspace.from_dict(_document(dataset))
        monkeypatch.setattr(MatchStore, "supported_blocking", ("hash",))
        store = MatchStore(
            workspace.plan.target, workspace.plan.rcks,
            blocking_backend="hash",
        )
        store.spec_fingerprint = workspace.fingerprint
        with pytest.raises(SpecError, match="cannot stream under"):
            workspace.stream(store=store)

    def test_sqlite_store_from_other_blocking_config_rejected(
        self, dataset, tmp_path
    ):
        path = str(tmp_path / "store.db")
        hash_doc = _document(
            dataset, persistence={"backend": "sqlite", "path": path}
        )
        hash_doc["blocking"] = {"backend": "hash", "key_length": 1}
        Workspace.from_dict(hash_doc).open_store().close()
        sn_doc = _document(
            dataset, persistence={"backend": "sqlite", "path": path}
        )
        with pytest.raises(SpecError, match="blocking"):
            Workspace.from_dict(sn_doc).open_store()

    def test_matching_sn_store_streams_fine(self, dataset, tmp_path):
        document = _document(
            dataset,
            persistence={
                "backend": "sqlite",
                "path": str(tmp_path / "ok.db"),
            },
        )
        workspace = Workspace.from_dict(document)
        matcher = workspace.stream()
        assert matcher.store.blocking.family == "sorted-neighborhood"
        matcher.store.close()


def test_sn_spec_window_in_fingerprint(dataset):
    """The window is semantics, not a deployment knob: it fingerprints."""
    narrow = Workspace.from_dict(_document(dataset))
    wide_doc = _document(dataset)
    wide_doc["blocking"]["window"] = 20
    wide = Workspace.from_dict(wide_doc)
    assert narrow.fingerprint != wide.fingerprint

"""Unit tests for the kernel's blocking backends."""

import pytest

from repro.core.findrcks import find_rcks
from repro.core.schema import LEFT, RIGHT
from repro.matching.blocking import multi_pass_block_pairs
from repro.matching.windowing import window_pairs
from repro.plan.blocking import (
    HashBlockingBackend,
    SortedNeighborhoodBackend,
    rck_sort_keys,
)


@pytest.fixture
def rcks(ext_sigma, ext_target):
    return find_rcks(ext_sigma, ext_target, m=5)


class TestHashBlockingBackend:
    def test_requires_indexes(self):
        with pytest.raises(ValueError, match="at least one index"):
            HashBlockingBackend([])

    def test_batch_candidates_match_multi_pass_blocking(
        self, rcks, small_dataset
    ):
        backend = HashBlockingBackend.per_rck(rcks)
        keys = [
            (index.left_key, index.right_key) for index in backend.indexes
        ]
        expected = multi_pass_block_pairs(
            small_dataset.credit, small_dataset.billing, keys
        )
        assert backend.candidates(
            small_dataset.credit, small_dataset.billing
        ) == expected

    def test_incremental_probe_agrees_with_batch(self, rcks, small_dataset):
        """add/probe yields exactly the pairs batch blocking generates."""
        backend = HashBlockingBackend.per_rck(rcks)
        credit, billing = small_dataset.credit, small_dataset.billing
        for row in credit:
            backend.add(LEFT, row)
        batch = set(backend.candidates(credit, billing))
        probed = {
            (left_tid, row.tid)
            for row in billing
            for left_tid in backend.probe(RIGHT, row)
        }
        assert probed == batch

    def test_batch_candidates_leave_postings_untouched(self, rcks, small_dataset):
        backend = HashBlockingBackend.per_rck(rcks)
        backend.candidates(small_dataset.credit, small_dataset.billing)
        row = small_dataset.billing.rows()[0]
        assert backend.probe(RIGHT, row) == []

    def test_describe_names_keys(self, rcks):
        assert "hash(" in HashBlockingBackend.per_rck(rcks).describe()


class TestSortedNeighborhoodBackend:
    def test_requires_keys(self):
        with pytest.raises(ValueError, match="at least one sort key"):
            SortedNeighborhoodBackend([])

    def test_window_below_two_yields_no_candidates(self, rcks, small_dataset):
        """Historical window_pairs behavior: w < 2 means no shared window."""
        backend = SortedNeighborhoodBackend.from_rcks(rcks, window=1)
        assert backend.candidates(
            small_dataset.credit, small_dataset.billing
        ) == []

    def test_candidates_match_window_pairs(self, rcks, small_dataset):
        backend = SortedNeighborhoodBackend.from_rcks(rcks, window=10)
        left_key, right_key = rck_sort_keys(rcks)
        expected = window_pairs(
            small_dataset.credit, small_dataset.billing,
            left_key, right_key, 10,
        )
        assert backend.candidates(
            small_dataset.credit, small_dataset.billing
        ) == expected

    def test_describe_reports_window(self, rcks):
        backend = SortedNeighborhoodBackend.from_rcks(rcks, window=4)
        assert "window=4" in backend.describe()

"""Unit tests for plan compilation: dedup, bindings, cache, explain."""

import pytest

from repro.core.findrcks import find_rcks
from repro.core.semantics import InstancePair, enforce
from repro.metrics.registry import MetricRegistry, default_registry
from repro.plan import (
    HashBlockingBackend,
    SortedNeighborhoodBackend,
    compile_plan,
)


class TestCompilation:
    def test_requires_rules_or_keys(self):
        with pytest.raises(ValueError, match="at least one MD or RCK"):
            compile_plan()

    def test_dedups_predicates_across_rules_and_keys(self, sigma, target):
        rcks = find_rcks(sigma, target, m=5)
        plan = compile_plan(sigma, target, rcks=rcks)
        triples = [
            (predicate.left, predicate.right, predicate.operator)
            for predicate in plan.predicates
        ]
        assert len(set(triples)) == len(triples)
        # Atoms shared between MDs and keys collapsed into shared slots.
        assert plan.atom_count > len(plan.predicates)

    def test_metrics_resolved_at_compile_time(self, sigma, target):
        registry = default_registry()
        calls = []
        original = registry.resolve

        def counting_resolve(name):
            calls.append(name)
            return original(name)

        registry.resolve = counting_resolve
        plan = compile_plan(sigma, target, registry=registry)
        compile_calls = len(calls)
        assert compile_calls == len(plan.predicates)
        # Evaluation never goes back to the registry.
        row = {"FN": "Mark"}
        for predicate in plan.predicates:
            plan.evaluate(predicate, "Mark", "Marx")
        assert len(calls) == compile_calls

    def test_unknown_operator_fails_at_compile_time(self, sigma, target):
        with pytest.raises(KeyError, match="unknown metric"):
            compile_plan(sigma, target, registry=MetricRegistry())

    def test_rules_reference_predicate_slots(self, sigma, target):
        plan = compile_plan(sigma, target)
        for rule in plan.rules:
            for slot in rule.lhs:
                assert 0 <= slot < len(plan.predicates)
        assert len(plan.rules) == len(sigma)

    def test_target_inferred_from_rcks(self, sigma, target):
        rcks = find_rcks(sigma, target, m=3)
        plan = compile_plan(rcks=rcks)
        assert plan.target == target
        assert plan.blocking is not None

    def test_enforcement_matcher_rejects_keys_only_plan(self, sigma, target):
        from repro.core.findrcks import find_rcks as _find
        from repro.matching.pipeline import EnforcementMatcher

        keys_only = compile_plan(rcks=_find(sigma, target, m=3))
        with pytest.raises(ValueError, match="without MDs"):
            EnforcementMatcher(plan=keys_only)

    def test_chase_only_plan_has_no_blocking(self, sigma, fig1):
        plan = compile_plan(sigma)
        assert plan.blocking is None
        assert plan.keys == ()
        _, credit, billing = fig1
        with pytest.raises(ValueError, match="without a blocking backend"):
            plan.candidates(credit, billing)


class TestSimilarityCache:
    def test_similarity_predicate_memoized(self, sigma, target):
        plan = compile_plan(sigma, target)
        dl = next(p for p in plan.predicates if p.operator.startswith("dl"))
        assert plan.evaluate(dl, "Mark", "Marx") is True
        first = plan.stats.metric_evaluations
        assert plan.evaluate(dl, "Mark", "Marx") is True
        assert plan.stats.metric_evaluations == first
        assert plan.stats.cache_hits == 1

    def test_equality_not_cached_but_counted(self, sigma, target):
        plan = compile_plan(sigma, target)
        eq = next(p for p in plan.predicates if p.operator == "=")
        plan.evaluate(eq, "a", "a")
        plan.evaluate(eq, "a", "a")
        assert plan.stats.metric_evaluations == 2
        assert plan.stats.cache_hits == 0

    def test_uncached_plan_recomputes(self, sigma, target):
        plan = compile_plan(sigma, target, cached=False)
        dl = next(p for p in plan.predicates if p.operator.startswith("dl"))
        plan.evaluate(dl, "Mark", "Marx")
        plan.evaluate(dl, "Mark", "Marx")
        assert plan.stats.metric_evaluations == 2
        assert plan.stats.cache_hits == 0

    def test_cache_overflow_clears_and_stays_correct(self, sigma, target):
        plan = compile_plan(sigma, target, cache_limit=4)
        dl = next(p for p in plan.predicates if p.operator.startswith("dl"))
        for index in range(20):
            assert plan.evaluate(dl, f"name{index}", f"name{index}x") is True
        assert plan.evaluate(dl, "Mark", "Kowalski") is False

    def test_stats_reset(self, sigma, target):
        plan = compile_plan(sigma, target)
        dl = next(p for p in plan.predicates if p.operator.startswith("dl"))
        plan.evaluate(dl, "Mark", "Marx")
        plan.stats.serial_fallback_reason = "single-component"
        plan.stats.reset()
        # Every counter back to 0, the fallback annotation back to None.
        expected = {key: 0 for key in plan.stats.as_dict()}
        expected["serial_fallback_reason"] = None
        assert plan.stats.as_dict() == expected


class TestKernelChase:
    def test_plan_enforce_matches_reference_enforce(self, sigma, fig1, target):
        """The kernel is the reference: same rounds, merges, stability."""
        pair, credit, billing = fig1
        candidates = [(l, r) for l in range(2) for r in range(4)]
        reference = enforce(
            InstancePair(pair, credit, billing), sigma,
            candidate_pairs=candidates,
        )
        plan = compile_plan(sigma, target)
        result = plan.enforce(
            InstancePair(pair, credit, billing), candidate_pairs=candidates
        )
        assert result.rounds == reference.rounds
        assert result.applications == reference.applications
        assert result.stable == reference.stable
        target_pairs = target.attribute_pairs()
        for left_tid, right_tid in candidates:
            assert result.identified(
                left_tid, right_tid, target_pairs
            ) == reference.identified(left_tid, right_tid, target_pairs)

    def test_chase_counters_accumulate(self, sigma, fig1, target):
        pair, credit, billing = fig1
        plan = compile_plan(sigma, target)
        candidates = [(0, 0), (0, 1)]
        plan.enforce(InstancePair(pair, credit, billing), candidate_pairs=candidates)
        stats = plan.stats
        assert stats.enforcements == 1
        assert stats.pairs_compared == 2
        assert stats.chase_rounds >= 2
        assert stats.rule_applications > 0
        assert stats.metric_evaluations > 0


class TestExplain:
    def test_explain_reports_dedup_and_bindings(self, sigma, target):
        plan = compile_plan(sigma, target)
        text = plan.explain()
        assert "unique predicate(s)" in text
        assert "exact equality" in text
        assert "DamerauLevenshtein >= 0.8" in text
        assert "blocking:" in text

    def test_to_dict_round_trips_to_json(self, sigma, target):
        import json

        plan = compile_plan(sigma, target)
        document = json.loads(json.dumps(plan.to_dict()))
        assert document["unique_predicates"] == len(plan.predicates)
        assert document["atoms_before_dedup"] == plan.atom_count
        assert len(document["rules"]) == len(sigma)

    def test_explain_with_hash_backend(self, sigma, target):
        rcks = find_rcks(sigma, target, m=3)
        plan = compile_plan(
            sigma, target, rcks=rcks,
            blocking=HashBlockingBackend.per_rck(rcks),
        )
        assert "hash(" in plan.explain()

    def test_explain_with_sn_backend(self, sigma, target):
        rcks = find_rcks(sigma, target, m=3)
        plan = compile_plan(
            sigma, target, rcks=rcks,
            blocking=SortedNeighborhoodBackend.from_rcks(rcks, window=7),
        )
        assert "window=7" in plan.explain()

"""Differential suite: the factorised chase ≡ the pairwise chase.

``execution.factorised`` is excluded from the spec fingerprint on the
claim that grouping candidate pairs by LHS value-pair signature
(:mod:`repro.plan.factorise`) never changes what the chase decides —
this suite is that claim's evidence.  For every
:mod:`repro.datagen.streams` arrival scenario and worker count 1/2/4,
matching through :class:`repro.api.Workspace` with ``factorised`` on
and off must produce *identical* MatchReports — same pairs, same
clusters, same provenance, and the same spec fingerprint.  A
value-level test additionally pins that the chased instances agree
cell by cell, and Hypothesis properties check the kernel pair
(:func:`repro.plan.executor.chase` vs
:func:`~repro.plan.executor.chase_factorised`) on random instances and
the group index's expansion/migration contract directly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Workspace
from repro.core.parser import parse_md
from repro.core.schema import LEFT, RIGHT, RelationSchema, SchemaPair
from repro.core.semantics import InstancePair
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.experiments.harness import resolution_spec_document
from repro.plan import compile_plan, parallel
from repro.plan.executor import chase, chase_factorised
from repro.plan.factorise import PairGroupIndex
from repro.relations.relation import Relation

SCENARIOS = {
    "arrival": arrival_stream,
    "duplicate-burst": duplicate_burst_stream,
    "late-duplicate": late_duplicate_stream,
}

SEED = 3


@pytest.fixture(autouse=True)
def force_pool(monkeypatch):
    """Drop the serial fallback threshold so workers=2/4 use the pool."""
    monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)


def _scenario_relations(dataset, make_stream, seed):
    """The dataset's relations rebuilt in the scenario's arrival order."""
    workload = make_stream(dataset, seed=seed)
    left = Relation(dataset.pair.left)
    right = Relation(dataset.pair.right)
    for event in workload.events:
        target = left if event.side == 0 else right
        target.insert(event.values, tid=event.tid)
    return left, right


def _workspace(dataset, workers, factorised):
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2},
        execution={
            "mode": "enforce",
            "workers": workers,
            "factorised": factorised,
        },
    )
    return Workspace.from_dict(document)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS), ids=sorted(SCENARIOS))
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_factorised_and_pairwise_reports_identical(scenario, workers):
    dataset = generate_dataset(120, seed=SEED)
    left, right = _scenario_relations(dataset, SCENARIOS[scenario], SEED)

    pairwise_workspace = _workspace(dataset, workers, factorised=False)
    pairwise = pairwise_workspace.match(left, right)
    assert pairwise_workspace.plan.stats.value_pairs_evaluated == 0
    assert pairwise_workspace.plan.stats.groups_built == 0

    workspace = _workspace(dataset, workers, factorised=True)
    report = workspace.match(left, right)
    assert report.matches == pairwise.matches
    assert report.candidates == pairwise.candidates
    assert report.clusters == pairwise.clusters
    assert report.provenance == pairwise.provenance
    # Factorisation is a deployment knob: same fingerprint either way.
    assert report.fingerprint == pairwise.fingerprint
    # The factorised run really took the group-at-a-time path ...
    assert workspace.plan.stats.value_pairs_evaluated > 0
    assert workspace.plan.stats.groups_built > 0
    # ... and it never probed more value pairs than the pairwise chase
    # probed (pair, atom) combinations.
    assert (
        workspace.plan.stats.value_pairs_evaluated
        <= pairwise_workspace.plan.stats.metric_evaluations
        + pairwise_workspace.plan.stats.cache_hits
    )


def test_factorised_and_pairwise_resolved_values_identical():
    """Cell-level equivalence: the chased instances agree everywhere."""
    for seed in (3, 11):
        dataset = generate_dataset(120, seed=seed)

        def chased_values(factorised):
            workspace = _workspace(dataset, 1, factorised)
            plan = workspace.plan
            pairs = plan.candidates(dataset.credit, dataset.billing)
            result = plan.enforce(
                InstancePair(plan.pair, dataset.credit, dataset.billing),
                candidate_pairs=pairs,
                factorised=factorised,
            )
            assert result.stable
            assert not result.rounds_exhausted
            return result, {
                (side, row.tid): row.values()
                for side, relation in (
                    (0, result.instance.left), (1, result.instance.right)
                )
                for row in relation
            }

        factorised_result, factorised_values = chased_values(True)
        pairwise_result, pairwise_values = chased_values(False)
        assert factorised_values == pairwise_values
        assert factorised_result.rounds == pairwise_result.rounds
        assert (
            factorised_result.applications == pairwise_result.applications
        )


# ----------------------------------------------------------------------
# Hypothesis: the kernel pair on random instances, and the group index's
# expansion/migration contract.  Shapes mirror test_chase_properties.py:
# tiny closed value universes make LHS equalities fire and repairs
# cascade, which is where factorised bookkeeping could drift.
# ----------------------------------------------------------------------

ATTRIBUTES = ("A", "B", "C")

VALUES = st.sampled_from([None, "a", "b", "ab", "ba", "abc"])

rows = st.lists(
    st.fixed_dictionaries({name: VALUES for name in ATTRIBUTES}),
    min_size=1,
    max_size=8,
)

attribute = st.sampled_from(ATTRIBUTES)

mds = st.lists(
    st.tuples(
        st.lists(attribute, min_size=1, max_size=2, unique=True),
        st.lists(attribute, min_size=1, max_size=2, unique=True),
    ),
    min_size=1,
    max_size=3,
)


def _build(left_rows, right_rows, md_shapes):
    pair = SchemaPair(
        RelationSchema("R", ATTRIBUTES), RelationSchema("S", ATTRIBUTES)
    )
    sigma = [
        parse_md(
            " & ".join(f"R[{name}] = S[{name}]" for name in lhs)
            + " -> "
            + " & ".join(f"R[{name}] <=> S[{name}]" for name in rhs),
            pair,
        )
        for lhs, rhs in md_shapes
    ]
    plan = compile_plan(sigma=sigma)
    instance = InstancePair(
        pair, Relation(pair.left, left_rows), Relation(pair.right, right_rows)
    )
    return plan, instance


def _values(instance):
    return {
        (side, row.tid): row.values()
        for side, relation in ((LEFT, instance.left), (RIGHT, instance.right))
        for row in relation
    }


@settings(max_examples=40, deadline=None)
@given(rows, rows, mds)
def test_factorised_chase_equals_pairwise_chase(
    left_rows, right_rows, md_shapes
):
    plan, instance = _build(left_rows, right_rows, md_shapes)
    pairwise = chase(plan, instance)
    factorised = chase_factorised(plan, instance)
    assert _values(factorised.instance) == _values(pairwise.instance)
    assert factorised.stable == pairwise.stable
    assert factorised.rounds == pairwise.rounds
    assert factorised.applications == pairwise.applications
    assert {
        frozenset(group) for group in factorised.merged_cells.classes()
    } == {frozenset(group) for group in pairwise.merged_cells.classes()}


@settings(max_examples=40, deadline=None)
@given(rows, rows, mds)
def test_group_expansion_recovers_candidate_pairs(
    left_rows, right_rows, md_shapes
):
    """expand() is a partition: every pair exactly once, before and
    after migration."""
    plan, instance = _build(left_rows, right_rows, md_shapes)
    pairs = [
        (left.tid, right.tid)
        for left in instance.left
        for right in instance.right
    ]
    index = PairGroupIndex(plan, instance, pairs)
    assert sorted(index.expand()) == sorted(pairs)
    assert index.pair_count == len(pairs)
    # Each pair sits in the group matching its current signature.
    for group in index.groups.values():
        for pair in group.pairs:
            assert index.signature(instance, pair) == group.signature

    # Chase the instance (repairs rewrite values), then migrate every
    # pair to its post-repair group: still a partition of the same set.
    result = chase(plan, instance)
    touched = index.migrate(result.instance, pairs)
    assert sorted(index.expand()) == sorted(pairs)
    assert index.pair_count == len(pairs)
    for group in touched:
        for pair in group.pairs:
            assert index.signature(result.instance, pair) == group.signature
    # Group verdicts agree with the pairwise LHS test, signature by
    # signature, on the chased instance.
    for group in index.groups.values():
        verdict = plan.group_verdict(group.signature)
        for rule_index, rule in enumerate(plan.rules):
            for left_tid, right_tid in group.pairs:
                assert (rule_index in verdict) == plan.lhs_matches(
                    rule,
                    result.instance.left[left_tid],
                    result.instance.right[right_tid],
                )


def test_unhashable_values_fall_back_to_per_pair_groups():
    """Rows whose LHS values are unhashable still chase correctly."""
    pair = SchemaPair(
        RelationSchema("R", ("A", "B")), RelationSchema("S", ("A", "B"))
    )
    sigma = [parse_md("R[A] = S[A] -> R[B] <=> S[B]", pair)]
    plan = compile_plan(sigma=sigma)
    left = Relation(pair.left, [
        {"A": ["k"], "B": "value"},   # unhashable LHS value
        {"A": "plain", "B": "kept"},
    ])
    right = Relation(pair.right, [
        {"A": ["k"], "B": None},
        {"A": "plain", "B": None},
    ])
    instance = InstancePair(pair, left, right)
    pairs = [(0, 0), (1, 1)]

    index = PairGroupIndex(plan, instance, pairs)
    # The unhashable signature got a private per-pair group.
    assert index.group_count == 2
    assert sorted(index.expand()) == pairs

    factorised = chase_factorised(plan, instance, candidate_pairs=pairs)
    pairwise = chase(plan, instance, candidate_pairs=pairs)
    assert _values(factorised.instance) == _values(pairwise.instance)
    assert factorised.instance.right[0]["B"] == "value"
    assert factorised.instance.right[1]["B"] == "kept"


def test_factorised_rounds_exhausted_matches_pairwise():
    """A too-small round budget exhausts both kernels identically."""
    pair = SchemaPair(
        RelationSchema("R", ("A", "B", "C")),
        RelationSchema("S", ("A", "B", "C")),
    )
    sigma = [
        parse_md("R[A] = S[A] -> R[B] <=> S[B]", pair),
        parse_md("R[B] = S[B] -> R[C] <=> S[C]", pair),
    ]
    plan = compile_plan(sigma=sigma)
    instance = InstancePair(
        pair,
        Relation(pair.left, [{"A": "x", "B": "long-b", "C": "long-c"}]),
        Relation(pair.right, [{"A": "x", "B": None, "C": None}]),
    )
    for max_rounds in (1, 2):
        factorised = chase_factorised(plan, instance, max_rounds=max_rounds)
        pairwise = chase(plan, instance, max_rounds=max_rounds)
        assert factorised.rounds_exhausted == pairwise.rounds_exhausted
        assert factorised.rounds_exhausted == (max_rounds == 1)
        assert factorised.stable == pairwise.stable
        assert _values(factorised.instance) == _values(pairwise.instance)


def test_stream_reuses_group_verdicts_across_ingests():
    """The verdict cache lives on the plan, so a second, value-identical
    batch of records chases without evaluating any new value pair."""
    schema_doc = {"name": "R", "attributes": ["A", "B"]}
    document = {
        "version": 1,
        "schema": {"left": schema_doc, "right": schema_doc},
        "target": {"left": ["B"], "right": ["B"]},
        "rules": {"mds": ["R[A] = R[A] -> R[B] <=> R[B]"]},
        "execution": {"mode": "enforce"},
    }
    workspace = Workspace.from_dict(document)
    matcher = workspace.stream()
    assert matcher.factorised

    records = [
        {"A": f"key-{index}", "B": f"value-{index}"} for index in range(4)
    ]
    for values in records:
        matcher.ingest(LEFT, dict(values))
        matcher.ingest(RIGHT, dict(values))
    after_first = workspace.plan.stats.value_pairs_evaluated
    assert after_first > 0

    # Same values again: every signature is already in the plan's
    # verdict cache, so the factorised chases probe nothing new.
    for values in records:
        matcher.ingest(RIGHT, dict(values))
    assert workspace.plan.stats.value_pairs_evaluated == after_first

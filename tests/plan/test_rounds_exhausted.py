"""``chase(max_rounds=...)`` must report exhaustion, never stop silently.

The adversarial rule set is a dependency chain: rule *i* repairs the
attribute rule *i+1* needs, so every chase round enables exactly one
more rule and a chain of length K needs K+1 rounds to converge.  A
``max_rounds`` below that used to exhaust silently, returning a partial
extension indistinguishable from a converged one; now
:class:`~repro.core.semantics.EnforcementResult.rounds_exhausted` says
so, through the serial kernel, the reference ``enforce`` entry point,
and the parallel executor alike.
"""

from __future__ import annotations

import pytest

from repro.api import Workspace
from repro.core.parser import parse_md
from repro.core.schema import RelationSchema, SchemaPair
from repro.core.semantics import InstancePair, enforce
from repro.plan import compile_plan
from repro.plan import parallel
from repro.relations.relation import Relation

#: Chain length: rule i reads A{i}, repairs A{i+1}.
CHAIN = 4

ATTRIBUTES = tuple(f"A{index}" for index in range(CHAIN + 1))


def _chain_setup(copies: int = 1):
    """``copies`` independent pair components, each needing CHAIN+1 rounds."""
    pair = SchemaPair(
        RelationSchema("R", ATTRIBUTES), RelationSchema("S", ATTRIBUTES)
    )
    sigma = [
        parse_md(
            f"R[A{index}] = S[A{index}] -> R[A{index + 1}] <=> S[A{index + 1}]",
            pair,
        )
        for index in range(CHAIN)
    ]
    left = Relation(pair.left)
    right = Relation(pair.right)
    pairs = []
    for copy in range(copies):
        # A0 agrees (the fuse); every later attribute disagrees until the
        # cascade of repairs reaches it.
        anchor = f"match-{copy}"
        left_tid = left.insert(
            {"A0": anchor, **{f"A{i}": f"left-{copy}-{i}-long" for i in range(1, CHAIN + 1)}}
        )
        right_tid = right.insert(
            {"A0": anchor, **{f"A{i}": None for i in range(1, CHAIN + 1)}}
        )
        pairs.append((left_tid, right_tid))
    return pair, sigma, InstancePair(pair, left, right), pairs


def test_chain_converges_and_reports_no_exhaustion():
    _, sigma, instance, pairs = _chain_setup()
    result = enforce(instance, sigma, candidate_pairs=pairs)
    assert result.rounds == CHAIN + 1
    assert not result.rounds_exhausted
    assert result.stable


@pytest.mark.parametrize("bound", [1, 2, CHAIN - 1])
def test_bounded_chase_records_exhaustion(bound):
    _, sigma, instance, pairs = _chain_setup()
    result = enforce(instance, sigma, candidate_pairs=pairs, max_rounds=bound)
    assert result.rounds == bound
    assert result.rounds_exhausted
    # The partial extension is visibly not a fixpoint.
    assert not result.stable
    # Exactly one rule fired per round.
    assert result.applications == bound


def test_zero_round_budget_on_unstable_instance_is_exhaustion():
    """A budget spent before any round ran is still exhaustion."""
    _, sigma, instance, pairs = _chain_setup()
    result = enforce(instance, sigma, candidate_pairs=pairs, max_rounds=0)
    assert result.rounds == 0
    assert not result.stable
    assert result.rounds_exhausted


def test_exact_bound_is_not_exhaustion():
    """Converging on the last permitted round is success, not exhaustion."""
    _, sigma, instance, pairs = _chain_setup()
    result = enforce(
        instance, sigma, candidate_pairs=pairs, max_rounds=CHAIN + 1
    )
    assert result.rounds == CHAIN + 1
    assert not result.rounds_exhausted
    assert result.stable


def test_merging_on_the_last_round_but_stable_is_not_exhaustion():
    """The budget may run out exactly when the chain completes.

    With ``max_rounds=CHAIN`` the final permitted round still merges —
    but it merges the chain's last link, so the result is stable and
    nothing was cut off: ``rounds_exhausted`` must stay False (the flag
    implies instability, never the other way around).
    """
    _, sigma, instance, pairs = _chain_setup()
    result = enforce(instance, sigma, candidate_pairs=pairs, max_rounds=CHAIN)
    assert result.rounds == CHAIN
    assert result.stable
    assert not result.rounds_exhausted


def test_parallel_chase_propagates_exhaustion(monkeypatch):
    """Any exhausted shard marks the merged parallel result exhausted."""
    monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)
    _, sigma, instance, pairs = _chain_setup(copies=6)
    document = {
        "version": 1,
        "schema": {
            "left": {"name": "R", "attributes": list(ATTRIBUTES)},
            "right": {"name": "S", "attributes": list(ATTRIBUTES)},
        },
        "target": {"left": ["A1"], "right": ["A1"]},
        "rules": {
            "mds": [
                f"R[A{i}] = S[A{i}] -> R[A{i + 1}] <=> S[A{i + 1}]"
                for i in range(CHAIN)
            ]
        },
        "execution": {"mode": "enforce", "workers": 2, "max_rounds": 2},
    }
    workspace = Workspace.from_dict(document)
    plan = compile_plan(sigma=sigma)
    exhausted = parallel.parallel_chase(
        plan,
        instance,
        spec_document=workspace.spec.to_dict(),
        candidate_pairs=pairs,
        workers=2,
        max_rounds=2,
    )
    assert plan.stats.parallel_chases == 1
    assert exhausted.rounds_exhausted
    assert not exhausted.stable

    converged = parallel.parallel_chase(
        plan,
        instance,
        spec_document=workspace.spec.to_dict(),
        candidate_pairs=pairs,
        workers=2,
    )
    assert not converged.rounds_exhausted
    assert converged.stable

"""Differential suite: the sharded parallel chase ≡ the serial chase.

For every :mod:`repro.datagen.streams` arrival scenario and a set of
randomized dataset seeds, matching through :class:`repro.api.Workspace`
with ``execution.workers`` of 1, 2 and 4 must produce *identical*
MatchReports — same pairs, same clusters, same provenance, and (because
the worker count is excluded from the fingerprint by design) the same
spec fingerprint.  A value-level test additionally pins that the chased
instances agree cell by cell, and a shared-instance (self-matching)
test covers the deduplication path.

The specs use hash blocking with ``key_length=2`` so the candidate
pairs split into many connected components, and the parallel threshold
is monkeypatched to 0 so even these test-sized inputs actually cross
the process pool.  Sorted-neighborhood specs shard too — the
rank-encoded index splits its runs at block boundaries, so SN
workloads produce many components and the sharded run must equal the
serial one (asserted here); the ``single-component`` serial fallback
only fires when every candidate genuinely chains into one component,
pinned by a hand-built one-block instance.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api import Workspace
from repro.core.semantics import InstancePair
from repro.datagen.generator import generate_dataset
from repro.datagen.schemas import extended_mds
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.experiments.harness import resolution_spec_document
from repro.plan import parallel
from repro.relations.relation import Relation

SCENARIOS = {
    "arrival": arrival_stream,
    "duplicate-burst": duplicate_burst_stream,
    "late-duplicate": late_duplicate_stream,
}

#: Randomized dataset seeds the differential suite sweeps.
SEEDS = (3, 11)


@pytest.fixture(autouse=True)
def force_pool(monkeypatch):
    """Drop the serial fallback threshold so the pool runs on test data."""
    monkeypatch.setattr(parallel, "PARALLEL_MIN_PAIRS", 0)


def _scenario_relations(dataset, make_stream, seed):
    """The dataset's relations rebuilt in the scenario's arrival order.

    Tuple ids are preserved (so reports are comparable across
    scenarios); only row insertion order — and therefore blocking/chase
    scan order — differs, which is exactly the perturbation the
    differential suite wants.
    """
    workload = make_stream(dataset, seed=seed)
    left = Relation(dataset.pair.left)
    right = Relation(dataset.pair.right)
    for event in workload.events:
        target = left if event.side == 0 else right
        target.insert(event.values, tid=event.tid)
    return left, right


def _workspace(dataset, workers, **blocking):
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2, **blocking},
        execution={"mode": "enforce", "workers": workers},
    )
    return Workspace.from_dict(document)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS), ids=sorted(SCENARIOS))
@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_and_serial_reports_identical(scenario, seed):
    dataset = generate_dataset(120, seed=seed)
    left, right = _scenario_relations(dataset, SCENARIOS[scenario], seed)

    serial_workspace = _workspace(dataset, workers=1)
    serial = serial_workspace.match(left, right)
    assert serial_workspace.plan.stats.parallel_chases == 0

    for workers in (2, 4):
        workspace = _workspace(dataset, workers=workers)
        report = workspace.match(left, right)
        assert report.matches == serial.matches
        assert report.candidates == serial.candidates
        assert report.clusters == serial.clusters
        assert report.provenance == serial.provenance
        # The worker count is a deployment knob: same fingerprint.
        assert report.fingerprint == serial.fingerprint
        assert workspace.plan.stats.parallel_chases == 1
        assert workspace.plan.stats.workers_spawned <= workers


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_and_serial_resolved_values_identical(seed):
    """Cell-level equivalence: the chased instances agree everywhere."""
    dataset = generate_dataset(120, seed=seed)
    serial_workspace = _workspace(dataset, workers=1)
    plan = serial_workspace.plan
    candidates = plan.candidates(dataset.credit, dataset.billing)

    def chased_values(workers):
        workspace = _workspace(dataset, workers=workers)
        result = workspace.plan.enforce(
            InstancePair(workspace.plan.pair, dataset.credit, dataset.billing),
            candidate_pairs=candidates,
            workers=workers,
            spec_document=workspace.spec.to_dict(),
        )
        assert result.stable
        assert not result.rounds_exhausted
        return {
            (side, row.tid): row.values()
            for side, relation in (
                (0, result.instance.left), (1, result.instance.right)
            )
            for row in relation
        }

    serial_values = chased_values(1)
    for workers in (2, 4):
        assert chased_values(workers) == serial_values


def test_self_matching_shared_instance_equivalent():
    """Deduplication (left is right) shards by tuple, not by side.

    A tuple appearing as left in one pair and right in another must land
    in one shard; the parallel chase on a shared instance therefore
    ships each bin as a single relation serving both sides.
    """
    import random

    rng = random.Random(9)
    schema_doc = {"name": "R", "attributes": ["A", "B", "C"]}
    document = {
        "version": 1,
        "schema": {"left": schema_doc, "right": schema_doc},
        "target": {"left": ["B"], "right": ["B"]},
        "rules": {"mds": ["R[A] = R[A] -> R[B] <=> R[B]"]},
        "execution": {"mode": "enforce", "workers": 4},
    }
    workspace = Workspace.from_dict(document)
    plan = workspace.plan
    relation = Relation(plan.pair.left)
    for group in range(30):
        for member in range(rng.randint(2, 4)):
            relation.insert({
                "A": f"key-{group}",
                "B": f"value-{group}" if member == 0 else None,
                "C": member,
            })
    # Hash-style candidates on A: only same-group pairs, so the pair
    # graph has one component per group.
    by_key = {}
    for row in relation:
        by_key.setdefault(row["A"], []).append(row.tid)
    pairs = [
        (a, b)
        for tids in by_key.values()
        for position, a in enumerate(tids)
        for b in tids[position + 1 :]
    ]
    instance = InstancePair(plan.pair, relation, relation)

    serial = plan.enforce(instance, candidate_pairs=pairs)
    result = plan.enforce(
        instance,
        candidate_pairs=pairs,
        workers=4,
        spec_document=workspace.spec.to_dict(),
    )
    assert plan.stats.parallel_chases == 1
    target_pairs = plan.target.attribute_pairs()
    for pair in pairs:
        assert result.identified(*pair, target_pairs) == serial.identified(
            *pair, target_pairs
        )
    for tid in relation.tids():
        assert (
            result.instance.left[tid].values()
            == serial.instance.left[tid].values()
        )
        # Every group's nulls were repaired to the informative value.
        assert result.instance.left[tid]["B"] is not None
    # The shared copy stays shared after the parallel merge.
    assert result.instance.left is result.instance.right


def test_sorted_neighborhood_shards_and_matches_serial():
    """Block-split SN runs shard across the pool — no serial fallback.

    The legacy batch backend's overlapping windows chained every pair
    into one component, so SN specs unconditionally fell back to the
    serial loop.  The rank-encoded index splits runs at block
    boundaries: an SN workload now decomposes into many components, the
    parallel executor engages, and the sharded report is identical to
    the serial one.
    """
    dataset = generate_dataset(120, seed=3)
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "sorted-neighborhood", "window": 10},
        execution={"mode": "enforce", "workers": 4},
    )
    workspace = Workspace.from_dict(document)
    report = workspace.match(dataset.credit, dataset.billing)
    stats = workspace.plan.stats
    assert stats.parallel_chases == 1
    assert stats.shards > 1
    assert stats.serial_fallback_reason is None
    serial = Workspace.from_dict(
        {**document, "execution": {"mode": "enforce", "workers": 1}}
    ).match(dataset.credit, dataset.billing)
    assert report.matches == serial.matches
    assert report.clusters == serial.clusters
    assert report.fingerprint == serial.fingerprint


def _one_block_sn_document(workers):
    """An SN spec whose candidates genuinely chain into one component.

    Every row carries the same value of the single keyed attribute, so
    the whole instance is one block run and consecutive windows overlap
    into a single connected component — the one case where the
    ``single-component`` serial fallback is still correct.
    """
    attributes = ["A", "B"]
    return {
        "version": 1,
        "schema": {
            "left": {"name": "L", "attributes": attributes},
            "right": {"name": "R", "attributes": attributes},
        },
        "target": {"left": ["B"], "right": ["B"]},
        "rules": {"mds": ["L[A] = R[A] -> L[B] <=> R[B]"]},
        "blocking": {
            "backend": "sorted-neighborhood",
            "window": 10,
            "key_pairs": [["A", "A"]],
            "encode": [],
        },
        "execution": {"mode": "enforce", "workers": workers},
    }


def test_truly_chained_sn_block_still_falls_back_to_serial():
    """One block run, overlapping windows: the pinned serial fallback."""
    workspace = Workspace.from_dict(_one_block_sn_document(workers=4))
    left = Relation(workspace.plan.pair.left)
    right = Relation(workspace.plan.pair.right)
    for tid in range(30):
        left.insert({"A": "shared", "B": f"value-{tid}"})
        right.insert({"A": "shared", "B": None})
    report = workspace.match(left, right)
    stats = workspace.plan.stats
    assert stats.parallel_chases == 0
    assert stats.serial_fallback_reason == "single-component"
    serial_workspace = Workspace.from_dict(_one_block_sn_document(workers=1))
    serial = serial_workspace.match(left, right)
    assert report.matches == serial.matches
    assert report.fingerprint == serial.fingerprint


def test_order_dependent_policy_identical_under_spawn():
    """'first-non-null' picks by *order* — spawn workers must agree.

    The repair pass feeds the resolver a sorted member order precisely
    so that order-dependent policies resolve identically in the serial
    parent and in spawn workers (whose fresh hash seeds would otherwise
    reorder set iteration).
    """
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("platform has no spawn start method")
    dataset = generate_dataset(80, seed=3)
    document = resolution_spec_document(
        dataset.pair,
        dataset.target,
        extended_mds(dataset.pair),
        blocking={"backend": "hash", "key_length": 2},
        execution={"mode": "enforce"},
    )
    document["resolution"] = {"policy": "first-non-null"}

    def chased_values(workers, start_method=None):
        workspace = Workspace.from_dict(document)
        result = workspace.plan.enforce(
            InstancePair(workspace.plan.pair, dataset.credit, dataset.billing),
            resolver=workspace.spec.resolver(),
            candidate_pairs=workspace.plan.candidates(
                dataset.credit, dataset.billing
            ),
            workers=workers,
            spec_document=workspace.spec.to_dict(),
            start_method=start_method,
        )
        return {
            (side, row.tid): row.values()
            for side, relation in (
                (0, result.instance.left), (1, result.instance.right)
            )
            for row in relation
        }

    assert chased_values(1) == chased_values(2, start_method="spawn")


def test_plan_spec_document_carries_cache_settings():
    """Workers must inherit the parent plan's memoization bounds."""
    from repro.plan import compile_plan
    from repro.plan.parallel import plan_spec_document

    dataset = generate_dataset(40, seed=3)
    sigma = extended_mds(dataset.pair)
    plan = compile_plan(sigma, dataset.target, cached=False, cache_limit=777)
    document = plan_spec_document(plan)
    assert document["execution"] == {"cache": False, "cache_limit": 777}
    rebuilt = Workspace.from_dict(document)
    assert rebuilt.plan.cached is False
    assert rebuilt.plan.cache_limit == 777


def test_enforcement_matcher_workers_path():
    """The legacy batch matcher parallelizes too — no spec in sight.

    It holds only a compiled plan, so the worker document comes from
    :func:`repro.plan.parallel.plan_spec_document`, which pins the
    plan's MDs and already-deduced RCKs; a plan compiled against a
    custom registry is not expressible and must stay serial.
    """
    from repro.matching.pipeline import EnforcementMatcher
    from repro.metrics.registry import default_registry
    from repro.plan import compile_plan
    from repro.plan.blocking import HashBlockingBackend
    from repro.plan.parallel import plan_spec_document

    dataset = generate_dataset(120, seed=3)
    sigma = extended_mds(dataset.pair)
    plan = compile_plan(sigma, dataset.target, top_k=5)
    candidates = HashBlockingBackend.per_rck(plan.rcks, key_length=2).candidates(
        dataset.credit, dataset.billing
    )

    serial = EnforcementMatcher(plan=plan).match(
        dataset.credit, dataset.billing, candidates=candidates
    )
    pooled_plan = compile_plan(sigma, dataset.target, top_k=5)
    pooled = EnforcementMatcher(plan=pooled_plan, workers=2).match(
        dataset.credit, dataset.billing, candidates=candidates
    )
    assert pooled_plan.stats.parallel_chases == 1
    assert pooled.matches == serial.matches

    # A custom registry cannot be shipped by name: document is None and
    # the chase stays serial (still correct, just not parallel).
    custom_plan = compile_plan(
        sigma, dataset.target, top_k=5, registry=default_registry()
    )
    assert plan_spec_document(custom_plan) is None
    fallback = EnforcementMatcher(plan=custom_plan, workers=2).match(
        dataset.credit, dataset.billing, candidates=candidates
    )
    assert custom_plan.stats.parallel_chases == 0
    assert fallback.matches == serial.matches


def test_spawn_start_method_supported():
    """The pool works under 'spawn' (CI also runs the suite under both)."""
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("platform has no spawn start method")
    dataset = generate_dataset(80, seed=3)
    workspace = _workspace(dataset, workers=2)
    candidates = workspace.plan.candidates(dataset.credit, dataset.billing)
    result = workspace.plan.enforce(
        InstancePair(workspace.plan.pair, dataset.credit, dataset.billing),
        candidate_pairs=candidates,
        workers=2,
        spec_document=workspace.spec.to_dict(),
        start_method="spawn",
    )
    assert workspace.plan.stats.parallel_chases == 1
    serial = _workspace(dataset, workers=1).enforce(
        dataset.credit, dataset.billing, candidates=candidates
    )
    target_pairs = workspace.plan.target.attribute_pairs()
    parallel_matches = [
        pair for pair in candidates if result.identified(*pair, target_pairs)
    ]
    assert tuple(parallel_matches) == serial.matches

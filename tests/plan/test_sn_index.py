"""Unit tests for the window-encoded sorted-neighborhood index.

The rank-encoding invariants in isolation: incremental insertion equals
batch construction, a probe is exactly the rank-range query, runs split
at block boundaries (so candidates shard), multi-pass rotation recovers
pairs that disagree on one leading attribute, and the degenerate
window < 2 yields no candidates.  End-to-end stream/batch equivalence
lives in ``test_sn_differential.py``.
"""

from __future__ import annotations

import pytest

from repro.core.schema import LEFT, RIGHT, RelationSchema
from repro.plan.blocking import SortedNeighborhoodBackend
from repro.plan.shard import shard_pairs
from repro.plan.sn_index import WindowedSNIndex, run_pairs, window_neighbors
from repro.relations.relation import Relation


SCHEMA = RelationSchema("R", ["K", "V"])


def _relation(values, attribute="K"):
    relation = Relation(SCHEMA)
    for value in values:
        relation.insert({attribute: value, "V": None})
    return relation


def _index(window=3, pairs=(("K", "K"),)):
    # encode_attributes=() keeps keys raw: tests control blocks exactly.
    return WindowedSNIndex(pairs, window=window, encode_attributes=())


class TestIncrementalEqualsBatch:
    def test_scan_candidates_matches_batch(self):
        left = _relation(["a1", "a2", "b1", "b2", "b3"])
        right = _relation(["a1", "a9", "b2", "c1"])
        index = _index(window=3)
        for row in left:
            index.add(LEFT, row)
        for row in right:
            index.add(RIGHT, row)
        assert index.scan_candidates() == index.candidates(left, right)

    def test_arrival_order_is_irrelevant(self):
        left = _relation(["a", "b", "c", "d"])
        right = _relation(["a", "b", "c", "d"])
        forward = _index(window=2)
        backward = _index(window=2)
        rows = [(LEFT, row) for row in left] + [(RIGHT, row) for row in right]
        for side, row in rows:
            forward.add(side, row)
        for side, row in reversed(rows):
            backward.add(side, row)
        assert forward.scan_candidates() == backward.scan_candidates()

    def test_probe_of_ranked_row_is_the_window(self):
        # One block, window 2: a probe sees only rank-adjacent entries.
        left = _relation(["x1", "x3", "x5"])
        right = _relation(["x2", "x4", "x6"])
        index = _index(window=2, pairs=(("V", "V"), ("K", "K")))
        # All rows share V=None, so block confinement keeps pass 0 in a
        # single run ordered by (V, K); pass 1 splits per K value.
        for row in left:
            index.add(LEFT, row)
        for row in right:
            index.add(RIGHT, row)
        # Pass 0's run order is x1 x2 x3 x4 x5 x6 (K tie-breaks); each
        # probe sees its rank neighbors on the other side only.
        assert index.probe(LEFT, left[0]) == [0]          # x1 -> x2
        assert index.probe(LEFT, left[1]) == [0, 1]       # x3 -> x2, x4
        assert index.probe(RIGHT, right[2]) == [2]        # x6 -> x5


def _blocked(values):
    """Rows with K as the block label and V as the in-block sort key."""
    relation = Relation(SCHEMA)
    for block, sub in values:
        relation.insert({"K": block, "V": sub})
    return relation


#: A single-pass two-attribute sort key: blocks on K, orders by V within.
BLOCKED_PAIRS = (("K", "K"), ("V", "V"))


class TestBlockConfinement:
    def test_no_pairs_across_blocks(self):
        # Two blocks ('a', 'b') that a global window would bridge: the
        # K=K pass confines; the V=V pass sees distinct V values only.
        left = _blocked([("a", "1"), ("a", "2"), ("b", "3")])
        right = _blocked([("a", "4"), ("b", "5"), ("b", "6")])
        index = _index(window=10, pairs=BLOCKED_PAIRS)
        pairs = index.candidates(left, right)
        assert pairs
        for left_tid, right_tid in pairs:
            assert left[left_tid]["K"] == right[right_tid]["K"]

    def test_blocks_become_shards(self):
        # Disjoint blocks produce disjoint pair-graph components.
        left = _blocked(
            [(block, f"l{i}") for block in "abcd" for i in range(3)]
        )
        right = _blocked(
            [(block, f"r{i}") for block in "abcd" for i in range(3)]
        )
        index = _index(window=10, pairs=BLOCKED_PAIRS)
        pairs = index.candidates(left, right)
        assert pairs
        assert len(shard_pairs(pairs)) == 4

    def test_legacy_backend_chains_what_the_index_splits(self):
        # The contrast that motivates the index: same rows, same window,
        # legacy global-window candidates form ONE component.
        from repro.plan.blocking import attribute_key

        left = _blocked([(block, f"l{i}") for block in "ab" for i in range(3)])
        right = _blocked([(block, f"r{i}") for block in "ab" for i in range(3)])
        sort_key = attribute_key(["K", "V"], [None, None])
        legacy = SortedNeighborhoodBackend([(sort_key, sort_key)], window=10)
        assert len(shard_pairs(legacy.candidates(left, right))) == 1
        index = _index(window=10, pairs=BLOCKED_PAIRS)
        assert len(shard_pairs(index.candidates(left, right))) == 2


class TestMultiPassRotation:
    def test_each_attribute_leads_one_pass(self):
        index = WindowedSNIndex(
            [("A", "A"), ("B", "B"), ("C", "C")], encode_attributes=()
        )
        assert index.pass_count == 3
        assert [rotation[0] for rotation in index.passes] == [
            ("A", "A"), ("B", "B"), ("C", "C")
        ]

    def test_disagreement_on_one_attribute_is_recovered(self):
        # Rows disagree on K (different blocks in pass 0) but agree on V:
        # pass 1 (led by V) still pairs them.
        schema = RelationSchema("R", ["K", "V"])
        left = Relation(schema)
        right = Relation(schema)
        left.insert({"K": "alpha", "V": "shared"})
        right.insert({"K": "omega", "V": "shared"})
        single = WindowedSNIndex([("K", "K")], encode_attributes=())
        assert single.candidates(left, right) == []
        multi = WindowedSNIndex(
            [("K", "K"), ("V", "V")], encode_attributes=()
        )
        assert multi.candidates(left, right) == [(0, 0)]

    def test_disagreement_on_every_attribute_stays_dropped(self):
        schema = RelationSchema("R", ["K", "V"])
        left = Relation(schema)
        right = Relation(schema)
        left.insert({"K": "alpha", "V": "one"})
        right.insert({"K": "omega", "V": "two"})
        multi = WindowedSNIndex(
            [("K", "K"), ("V", "V")], encode_attributes=()
        )
        assert multi.candidates(left, right) == []


class TestDegenerateWindows:
    @pytest.mark.parametrize("window", [0, 1, -3])
    def test_window_below_two_yields_nothing(self, window):
        left = _relation(["a", "a", "a"])
        right = _relation(["a", "a", "a"])
        index = _index(window=window)
        for row in left:
            index.add(LEFT, row)
        for row in right:
            index.add(RIGHT, row)
        assert index.candidates(left, right) == []
        assert index.scan_candidates() == []
        assert index.probe(LEFT, left[0]) == []

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError, match="at least one attribute pair"):
            WindowedSNIndex([])


class TestHelpers:
    def test_window_neighbors_absent_entry_uses_insertion_point(self):
        run = [(("b",), 0, 0), (("d",), 1, 1), (("f",), 1, 2)]
        # An un-ranked probe key 'c' would insert at rank 1: 'd' is at
        # distance 1, 'f' at distance 2 — window 2 sees only 'd'.
        assert window_neighbors(run, (("c",), 0, 9), 2) == [1]
        assert window_neighbors(run, (("c",), 0, 9), 3) == [1, 2]

    def test_run_pairs_is_side_aware(self):
        run = [(("a",), 0, 0), (("b",), 0, 1), (("c",), 1, 7)]
        assert run_pairs(run, 10) == {(0, 7), (1, 7)}
        assert run_pairs(run, 2) == {(1, 7)}

    def test_index_stats_and_describe(self):
        index = WindowedSNIndex(
            [("K", "K"), ("V", "V")], window=4, encode_attributes=()
        )
        left = _relation(["a1", "b1"])
        for row in left:
            index.add(LEFT, row)
        stats = index.index_stats()
        assert set(stats) == {"sn:K+V", "sn:V+K"}
        assert stats["sn:K+V"]["buckets"] == 2      # blocks a, b
        assert stats["sn:V+K"]["buckets"] == 1      # all V=None
        assert stats["sn:V+K"]["largest_bucket"] == 2
        description = index.describe()
        assert description.startswith("sorted-neighborhood(window=4")
        assert "block boundaries" in description

    def test_from_rcks_encodes_like_the_hash_backend(self):
        # Soundex on the encode set: 'Clifford' and 'Clivord' share a
        # block, so the typo'd name still ranks adjacently.
        schema = RelationSchema("R", ["LN", "FN"])
        left = Relation(schema)
        right = Relation(schema)
        left.insert({"LN": "Clifford", "FN": "Ann"})
        right.insert({"LN": "Clivord", "FN": "Ann"})
        index = WindowedSNIndex(
            [("LN", "LN")], encode_attributes=("LN",)
        )
        assert index.candidates(left, right) == [(0, 0)]

"""Satellite acceptance: one plan, two matchers, identical clusters.

The batch :class:`~repro.matching.pipeline.EnforcementMatcher` and the
streaming :class:`~repro.engine.matcher.IncrementalMatcher` are driven
through the *same* compiled :class:`~repro.plan.compile.EnforcementPlan`
object, on all three :mod:`repro.datagen.streams` arrival scenarios, and
must produce identical entity clusters.
"""

import pytest

from repro.datagen.schemas import extended_mds
from repro.datagen.streams import (
    arrival_stream,
    duplicate_burst_stream,
    late_duplicate_stream,
)
from repro.engine import IncrementalMatcher
from repro.matching.clustering import cluster_matches
from repro.matching.pipeline import EnforcementMatcher
from repro.plan import compile_plan


@pytest.fixture(scope="module")
def shared_plan(small_dataset):
    sigma = extended_mds(small_dataset.pair)
    return compile_plan(sigma, small_dataset.target, top_k=5)


@pytest.mark.parametrize(
    "make_stream",
    [duplicate_burst_stream, arrival_stream, late_duplicate_stream],
    ids=["duplicate-burst", "arrival", "late-duplicate"],
)
def test_batch_and_streaming_agree_through_one_plan(
    small_dataset, shared_plan, make_stream
):
    streaming = IncrementalMatcher(plan=shared_plan)
    streaming.ingest_stream(make_stream(small_dataset, seed=5).events)
    streamed_clusters = {
        (cluster.left_tids, cluster.right_tids)
        for cluster in streaming.store.clusters()
    }

    # The batch matcher consumes the same candidate universe the engine's
    # hash-blocking backend maintains, through the same plan object.
    candidates = streaming.store.blocking.candidates(
        small_dataset.credit, small_dataset.billing
    )
    batch = EnforcementMatcher(plan=shared_plan)
    result = batch.match(
        small_dataset.credit, small_dataset.billing, candidates=candidates
    )
    batch_clusters = {
        (cluster.left_tids, cluster.right_tids)
        for cluster in cluster_matches(result.matches)
    }

    assert streamed_clusters == batch_clusters


def test_shared_plan_counters_cover_both_matchers(small_dataset, shared_plan):
    """Both executions charge the same plan's work counters."""
    before = shared_plan.stats.enforcements
    matcher = IncrementalMatcher(plan=shared_plan)
    matcher.ingest_stream(duplicate_burst_stream(small_dataset, seed=1).events)
    after_stream = shared_plan.stats.enforcements
    assert after_stream > before

    batch = EnforcementMatcher(plan=shared_plan)
    batch.match(
        small_dataset.credit,
        small_dataset.billing,
        candidates=matcher.store.blocking.candidates(
            small_dataset.credit, small_dataset.billing
        ),
    )
    assert shared_plan.stats.enforcements == after_stream + 1
    assert shared_plan.stats.metric_evaluations > 0

"""Property-based tests (Hypothesis) for the enforcement chase.

Randomized small instances and MD sets over a fixed schema pair check
the kernel's algebraic contracts — the ones the sharded parallel
executor (:mod:`repro.plan.parallel`) relies on:

* **immutability** — the original instance is never mutated, whatever
  the rules do ("in the matching process instance D may not be
  updated");
* **idempotence** — a converged chase is a fixpoint: chasing the result
  again applies no rule and changes no value;
* **monotonicity of merges** — identifications only grow with more
  rounds: every cell pair merged under ``max_rounds=k`` stays merged
  under any larger bound, and a chase that did not exhaust its rounds
  decides exactly what the unbounded chase decides;
* **shard-union == full-run** — chasing each connected component of the
  candidate pairs separately (in process, no pool) and unioning the
  results reproduces the full chase's identifications and repaired
  values, the soundness argument behind ``plan/parallel.py``.

The shapes are deliberately tiny (≤ 8 rows per side, ≤ 3 MDs over a
3-attribute schema with equality operators): the properties are about
rule interaction — repairs enabling later rules, merge classes growing
across rounds — not scale, and small shapes keep Hypothesis fast while
shrinking failures to readable instances.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_md
from repro.core.schema import LEFT, RIGHT, RelationSchema, SchemaPair
from repro.core.semantics import InstancePair
from repro.plan import compile_plan, shard_pairs
from repro.plan.executor import chase
from repro.relations.relation import Relation

ATTRIBUTES = ("A", "B", "C")

#: A small closed value universe: overlapping values make LHS equalities
#: fire, differing lengths make the prefer-informative resolver rewrite.
VALUES = st.sampled_from([None, "a", "b", "ab", "ba", "abc"])

rows = st.lists(
    st.fixed_dictionaries({name: VALUES for name in ATTRIBUTES}),
    min_size=1,
    max_size=8,
)

attribute = st.sampled_from(ATTRIBUTES)

mds = st.lists(
    st.tuples(
        st.lists(attribute, min_size=1, max_size=2, unique=True),
        st.lists(attribute, min_size=1, max_size=2, unique=True),
    ),
    min_size=1,
    max_size=3,
)


def _build(left_rows, right_rows, md_shapes):
    """Realize generated shapes as a compiled plan and an instance pair."""
    pair = SchemaPair(
        RelationSchema("R", ATTRIBUTES), RelationSchema("S", ATTRIBUTES)
    )
    sigma = [
        parse_md(
            " & ".join(f"R[{name}] = S[{name}]" for name in lhs)
            + " -> "
            + " & ".join(f"R[{name}] <=> S[{name}]" for name in rhs),
            pair,
        )
        for lhs, rhs in md_shapes
    ]
    plan = compile_plan(sigma=sigma)
    instance = InstancePair(
        pair, Relation(pair.left, left_rows), Relation(pair.right, right_rows)
    )
    return plan, instance


def _values(instance: InstancePair):
    return {
        (side, row.tid): row.values()
        for side, relation in ((LEFT, instance.left), (RIGHT, instance.right))
        for row in relation
    }


def _identified_cells(result):
    """Every merged (cell, cell) identification as a canonical frozenset."""
    return {
        frozenset(group) for group in result.merged_cells.classes()
    }


@settings(max_examples=40, deadline=None)
@given(rows, rows, mds)
def test_original_instance_never_mutated(left_rows, right_rows, md_shapes):
    plan, instance = _build(left_rows, right_rows, md_shapes)
    before = _values(instance)
    chase(plan, instance)
    assert _values(instance) == before


@settings(max_examples=40, deadline=None)
@given(rows, rows, mds)
def test_chase_is_idempotent(left_rows, right_rows, md_shapes):
    plan, instance = _build(left_rows, right_rows, md_shapes)
    first = chase(plan, instance)
    assert first.stable
    assert not first.rounds_exhausted
    # Idempotence is a *value-level* fixpoint: re-chasing may re-identify
    # cells (each chase starts a fresh union-find), but those classes
    # already carry one value, so nothing is ever rewritten again.
    again = chase(plan, first.instance)
    assert again.stable
    assert _values(again.instance) == _values(first.instance)


@settings(max_examples=40, deadline=None)
@given(rows, rows, mds, st.integers(min_value=1, max_value=4))
def test_merges_grow_monotonically_with_rounds(
    left_rows, right_rows, md_shapes, bound
):
    plan, instance = _build(left_rows, right_rows, md_shapes)
    bounded = chase(plan, instance, max_rounds=bound)
    full = chase(plan, instance)
    # Every class merged under the bound survives (possibly having grown)
    # in the unbounded chase.
    for group in bounded.merged_cells.classes():
        anchor, *rest = sorted(group)
        for member in rest:
            assert full.merged_cells.same(anchor, member)
    # A non-exhausted bounded chase reached a stable instance: later
    # rounds may still merge cells that already carry equal values, but
    # they can never rewrite one — the *values* are final.
    if not bounded.rounds_exhausted:
        assert _values(bounded.instance) == _values(full.instance)
    # Converging strictly inside the bound (a no-merge round ran) means
    # the bounded chase IS the full chase, identifications included.
    if bounded.rounds < bound:
        assert _identified_cells(bounded) == _identified_cells(full)


@settings(max_examples=40, deadline=None)
@given(rows, rows, mds, st.data())
def test_shard_union_equals_full_run(left_rows, right_rows, md_shapes, data):
    """Chasing each connected component separately ≡ one full chase.

    The candidate pairs are a drawn *subset* of the cross product — the
    full cross product is always one connected component (every pair
    shares a tuple with every same-row pair), so only sparse pair sets,
    like the ones blocking produces, exercise real multi-shard splits.
    """
    plan, instance = _build(left_rows, right_rows, md_shapes)
    universe = list(instance.tuple_pairs())
    pairs = data.draw(
        st.lists(st.sampled_from(universe), unique=True, max_size=12),
        label="candidate_pairs",
    )
    full = chase(plan, instance, candidate_pairs=pairs)

    union_identified = set()
    union_values = _values(instance)
    for shard in shard_pairs(pairs):
        result = chase(plan, instance, candidate_pairs=list(shard.pairs))
        union_identified |= _identified_cells(result)
        after = _values(result.instance)
        for tid in shard.left_tids:
            union_values[(LEFT, tid)] = after[(LEFT, tid)]
        for tid in shard.right_tids:
            union_values[(RIGHT, tid)] = after[(RIGHT, tid)]

    assert union_identified == _identified_cells(full)
    assert union_values == _values(full.instance)
